// Golden byte-identity lock for the state-space derivation pipeline.
//
// The committed files under tests/golden/ were produced by the pre-refactor
// (flat-vector, duplicated-BFS) derivation code.  These tests re-derive the
// PDA and Tomcat case studies at lane counts {1, 2, 8} and require the
// annotated XMI, the DOT dumps and the state/transition counts to match
// those bytes exactly, so any change to the exploration engine or the
// transition-system representation that perturbs canonical numbering,
// transition order or formatting is caught immediately.
//
// Regenerate (only when an intentional format change is made) with:
//   CHOREO_GOLDEN_REGEN=1 ./tests/test_golden_artifacts
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "choreographer/extract_activity.hpp"
#include "choreographer/extract_statechart.hpp"
#include "choreographer/paper_models.hpp"
#include "choreographer/pipeline.hpp"
#include "pepa/dot.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "pepanet/net_dot.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "uml/xmi.hpp"
#include "util/thread_pool.hpp"
#include "xml/write.hpp"

namespace {

using namespace choreo;

const char* golden_dir() { return CHOREO_GOLDEN_DIR; }

bool regen() { return std::getenv("CHOREO_GOLDEN_REGEN") != nullptr; }

std::string read_golden(const std::string& name) {
  std::ifstream stream(std::string(golden_dir()) + "/" + name,
                       std::ios::binary);
  EXPECT_TRUE(stream.good()) << "missing golden file " << name;
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return buffer.str();
}

void write_golden(const std::string& name, const std::string& bytes) {
  std::ofstream stream(std::string(golden_dir()) + "/" + name,
                       std::ios::binary);
  ASSERT_TRUE(stream.good()) << "cannot write golden file " << name;
  stream << bytes;
}

void check_or_regen(const std::string& name, const std::string& bytes,
                    std::size_t lanes) {
  if (regen()) {
    if (lanes == 1) write_golden(name, bytes);
    return;
  }
  EXPECT_EQ(bytes, read_golden(name)) << name << " at lane count " << lanes;
}

constexpr std::size_t kLaneCounts[] = {1, 2, 8};

pepanet::NetStateSpace derive_pda(chor::ActivityExtraction& extraction,
                                  std::size_t lanes, util::ThreadPool* pool) {
  chor::PdaParams params;
  params.transmitters = 6;
  uml::Model model = chor::pda_handover_model(params);
  extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
  pepanet::NetSemantics semantics(extraction.net);
  pepanet::NetDeriveOptions options;
  options.threads = lanes;
  options.pool = pool;
  return pepanet::NetStateSpace::derive(semantics, options);
}

pepa::StateSpace derive_tomcat(chor::StatechartExtraction& extraction,
                               std::size_t lanes, util::ThreadPool* pool) {
  chor::TomcatParams params;
  params.clients = 3;
  const uml::Model model = chor::tomcat_model(false, params);
  extraction = chor::extract_state_machines(model);
  pepa::Semantics semantics(extraction.model.arena());
  pepa::DeriveOptions options;
  options.threads = lanes;
  options.pool = pool;
  return pepa::StateSpace::derive(semantics, extraction.model.system(),
                                  options);
}

TEST(GoldenArtifacts, PdaMarkingGraphDotAndCounts) {
  util::ThreadPool pool(4);
  for (const std::size_t lanes : kLaneCounts) {
    chor::ActivityExtraction extraction;
    const pepanet::NetStateSpace space =
        derive_pda(extraction, lanes, lanes > 1 ? &pool : nullptr);
    check_or_regen("pda_markings.dot",
                   pepanet::marking_graph_to_dot(extraction.net, space), lanes);
    check_or_regen("pda_counts.txt",
                   "states " + std::to_string(space.marking_count()) +
                       "\ntransitions " +
                       std::to_string(space.transitions().size()) + "\n",
                   lanes);
  }
}

TEST(GoldenArtifacts, TomcatDerivationDotAndCounts) {
  util::ThreadPool pool(4);
  for (const std::size_t lanes : kLaneCounts) {
    chor::StatechartExtraction extraction;
    const pepa::StateSpace space =
        derive_tomcat(extraction, lanes, lanes > 1 ? &pool : nullptr);
    check_or_regen("tomcat_derivation.dot",
                   pepa::to_dot(extraction.model.arena(), space), lanes);
    check_or_regen("tomcat_counts.txt",
                   "states " + std::to_string(space.state_count()) +
                       "\ntransitions " +
                       std::to_string(space.transitions().size()) + "\n",
                   lanes);
  }
}

TEST(GoldenArtifacts, PdaAnnotatedXmiBytes) {
  const xml::Document project = uml::to_xmi(chor::pda_handover_model());
  util::ThreadPool pool(4);
  for (const std::size_t lanes : kLaneCounts) {
    chor::AnalysisOptions options;
    options.derive_threads = lanes;
    options.derive_pool = lanes > 1 ? &pool : nullptr;
    const xml::Document annotated = chor::analyse_project(project, options);
    check_or_regen("pda_annotated.xmi", xml::to_string(annotated), lanes);
  }
}

TEST(GoldenArtifacts, TomcatAnnotatedXmiBytes) {
  chor::TomcatParams params;
  params.clients = 3;
  const xml::Document project =
      uml::to_xmi(chor::tomcat_model(false, params));
  util::ThreadPool pool(4);
  for (const std::size_t lanes : kLaneCounts) {
    chor::AnalysisOptions options;
    options.derive_threads = lanes;
    options.derive_pool = lanes > 1 ? &pool : nullptr;
    const xml::Document annotated = chor::analyse_project(project, options);
    check_or_regen("tomcat_annotated.xmi", xml::to_string(annotated), lanes);
  }
}

}  // namespace
