// Tests for strong-equivalence (action-labelled) aggregation: the quotient
// must preserve per-action throughputs, collapse symmetric replicas, and
// distinguish states that bare (unlabelled) lumping would merge.
#include <gtest/gtest.h>

#include "choreographer/extract_activity.hpp"
#include "choreographer/paper_models.hpp"
#include "ctmc/labelled_lumping.hpp"
#include "ctmc/lumping.hpp"
#include "ctmc/steady_state.hpp"
#include "pepa/aggregate.hpp"
#include "pepa/measures.hpp"
#include "pepa/parser.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "pepanet/netaggregate.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"

namespace cc = choreo::ctmc;
namespace cp = choreo::pepa;
namespace cn = choreo::pepanet;
namespace chor = choreo::chor;

TEST(LabelledLumping, DistinguishesLabelsUnlabelledLumpingMerges) {
  // Two states with identical total exit rates but different action labels
  // must stay apart under the labelled refinement.
  //   0 -a,1-> 2;  1 -b,1-> 2;  2 -c,1-> 0;  2 -c,1-> 1  (as two targets)
  std::vector<cc::LabelledTransition> lts{{0, 2, /*a=*/1, 1.0},
                                          {1, 2, /*b=*/2, 1.0},
                                          {2, 0, /*c=*/3, 1.0},
                                          {2, 1, /*c=*/3, 1.0}};
  const auto labelled = cc::compute_labelled_lumping(3, lts);
  EXPECT_EQ(labelled.block_count, 3u);

  // The unlabelled bisimulation merges 0 and 1 (same rate into {2}).
  auto generator = cc::Generator::build(
      3, {{0, 2, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}, {2, 1, 1.0}});
  const auto unlabelled = cc::compute_lumping(generator);
  EXPECT_EQ(unlabelled.block_count, 2u);
}

TEST(LabelledLumping, ReplicasCollapseAndThroughputsSurvive) {
  auto model = cp::parse_model(R"(
    C = (req, 1.0).(wait, 2.0).(think, 3.0).C;
    S = C || C || C;
    @system S;
  )");
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  ASSERT_EQ(space.state_count(), 27u);

  const auto lumping = cp::aggregate(space);
  EXPECT_EQ(lumping.block_count, 10u);  // population vector C(3+2, 2)

  const auto pi_full = cc::steady_state(space.generator()).distribution;
  const auto pi_quotient =
      cc::steady_state(lumping.quotient_generator()).distribution;

  // Per-action throughput identical on both levels.
  for (const char* name : {"req", "wait", "think"}) {
    const auto action = *model.arena().find_action(name);
    const double full = cp::action_throughput(space, pi_full, action);
    const double quotient = lumping.throughput(pi_quotient, action);
    EXPECT_NEAR(full, quotient, 1e-9) << name;
  }
}

TEST(LabelledLumping, SelfLoopThroughputPreserved) {
  // A labelled self-loop carries throughput although it does not move the
  // chain; the quotient must keep it.
  auto model = cp::parse_model(R"(
    P = (spin, 4.0).P + (go, 1.0).Q;
    Q = (back, 2.0).P;
    @system P;
  )");
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  const auto lumping = cp::aggregate(space);
  const auto pi_full = cc::steady_state(space.generator()).distribution;
  const auto pi_quotient =
      cc::steady_state(lumping.quotient_generator()).distribution;
  const auto spin = *model.arena().find_action("spin");
  EXPECT_NEAR(cp::action_throughput(space, pi_full, spin),
              lumping.throughput(pi_quotient, spin), 1e-10);
  EXPECT_GT(lumping.throughput(pi_quotient, spin), 0.0);
}

TEST(LabelledLumping, PdaMarkingGraphAggregates) {
  // The handover ring is symmetric under rotation: with identical rates at
  // every hop, the 10-marking graph of the 2-transmitter ring aggregates
  // (per-hop action labels differ, so the quotient keeps one block per
  // (stage, hop) pair -- aggregation is exact but the labelled refinement
  // cannot merge differently-labelled hops).
  const choreo::uml::Model model = chor::pda_handover_model();
  auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
  cn::NetSemantics semantics(extraction.net);
  const auto space = cn::NetStateSpace::derive(semantics);
  const auto lumping = cn::aggregate(space);
  EXPECT_EQ(lumping.block_count, space.marking_count());  // labels pin hops

  // Exactness still holds trivially.
  const auto pi_full = cc::steady_state(space.generator()).distribution;
  const auto pi_quotient =
      cc::steady_state(lumping.quotient_generator()).distribution;
  const auto handover = *extraction.net.arena().find_action("handover_1");
  EXPECT_NEAR(cn::action_throughput(space, pi_full, handover),
              lumping.throughput(pi_quotient, handover), 1e-10);
}

TEST(LabelledLumping, InitialPartitionRefined) {
  std::vector<cc::LabelledTransition> lts{{0, 1, 1, 1.0}, {1, 0, 1, 1.0},
                                          {2, 3, 1, 1.0}, {3, 2, 1, 1.0}};
  // Two disconnected identical toggles: every state moves to an equivalent
  // state by the same action at the same rate, so all four merge.
  const auto merged = cc::compute_labelled_lumping(4, lts);
  EXPECT_EQ(merged.block_count, 1u);
  // Pinning state 2 apart propagates: its partner 3 must split from {0,1}
  // (3 moves into block{2}, 0 and 1 do not).
  const auto split = cc::compute_labelled_lumping(4, lts, {0, 0, 1, 0});
  EXPECT_EQ(split.block_count, 3u);
  EXPECT_EQ(split.block_of[0], split.block_of[1]);
  EXPECT_NE(split.block_of[2], split.block_of[3]);
  EXPECT_NE(split.block_of[3], split.block_of[0]);
}

TEST(LabelledLumping, AggregateDistribution) {
  std::vector<cc::LabelledTransition> lts{{0, 1, 1, 1.0}, {1, 0, 1, 1.0},
                                          {2, 3, 1, 1.0}, {3, 2, 1, 1.0}};
  const auto lumping = cc::compute_labelled_lumping(4, lts, {0, 0, 1, 0});
  const std::vector<double> uniform{0.25, 0.25, 0.25, 0.25};
  const auto aggregated = lumping.aggregate(uniform);
  ASSERT_EQ(aggregated.size(), 3u);
  EXPECT_DOUBLE_EQ(aggregated[0] + aggregated[1] + aggregated[2], 1.0);
  EXPECT_DOUBLE_EQ(aggregated[lumping.block_of[0]], 0.5);
}
