// Tests of the concurrent analysis service: scheduler lifecycle, the
// content-addressed result cache, determinism of cached results, the
// ≥64-job concurrency stress, and timeout/cancellation semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "choreographer/paper_models.hpp"
#include "choreographer/pipeline.hpp"
#include "service/cache.hpp"
#include "service/job.hpp"
#include "service/metrics.hpp"
#include "service/scheduler.hpp"
#include "uml/xmi.hpp"
#include "xml/write.hpp"

namespace chor = choreo::chor;
namespace cs = choreo::service;
namespace cm = choreo::uml;
namespace cx = choreo::xml;

namespace {

/// A project document with Poseidon-style layout attached.
cx::Document project_with_layout(const cm::Model& model, int x) {
  cx::Document document = cm::to_xmi(model);
  cx::Node& layout = document.root().add_element("Poseidon.layout");
  layout.add_element("node")
      .set_attr("ref", "n1")
      .set_attr("x", std::to_string(x))
      .set_attr("y", "40");
  return document;
}

/// What a one-shot analyse_project run produces for this request.
std::string reference_bytes(const cx::Document& project,
                            const chor::AnalysisOptions& options) {
  return cx::to_string(chor::analyse_project(project, options));
}

cs::JobRequest inline_request(cx::Document project,
                              const chor::AnalysisOptions& options = {}) {
  cs::JobRequest request;
  request.project = std::move(project);
  request.options = options;
  return request;
}

}  // namespace

TEST(Cache, LayoutOnlyEditsShareAKey) {
  const cm::Model model = chor::pda_handover_model();
  const chor::AnalysisOptions options;
  const std::string moved_once =
      cs::cache_key(project_with_layout(model, 100), options);
  const std::string moved_again =
      cs::cache_key(project_with_layout(model, 700), options);
  EXPECT_EQ(moved_once, moved_again);
  EXPECT_EQ(cs::fingerprint(moved_once), cs::fingerprint(moved_again));

  // Any result-affecting option change is a different key.
  chor::AnalysisOptions aggregated;
  aggregated.aggregation = chor::Aggregation::kExact;
  EXPECT_NE(moved_once,
            cs::cache_key(project_with_layout(model, 100), aggregated));
  // The fluid ODE knobs shape results only at the fluid level, so they
  // only key there: tightening a tolerance must not split exact analyses.
  chor::AnalysisOptions tightened;
  tightened.fluid_rel_tol = 1e-9;
  EXPECT_EQ(moved_once,
            cs::cache_key(project_with_layout(model, 100), tightened));
  chor::AnalysisOptions fluid = tightened;
  fluid.aggregation = chor::Aggregation::kFluid;
  chor::AnalysisOptions fluid_default;
  fluid_default.aggregation = chor::Aggregation::kFluid;
  EXPECT_NE(cs::cache_key(project_with_layout(model, 100), fluid),
            cs::cache_key(project_with_layout(model, 100), fluid_default));
  chor::AnalysisOptions rated;
  rated.rates = {{"handover_1", 0.25}};
  EXPECT_NE(moved_once, cs::cache_key(project_with_layout(model, 100), rated));

  // A structural edit (a different model) is a different key.
  EXPECT_NE(moved_once,
            cs::cache_key(project_with_layout(
                              chor::instant_message_model(), 100),
                          options));
}

TEST(Cache, LruEvictsUnderByteBudget) {
  cs::Registry registry;
  cs::CacheOptions options;
  options.registry = &registry;
  cs::ResultCache probe({.max_bytes = 1 << 30, .registry = &registry});

  cs::CachedAnalysis analysis;
  analysis.reflected_model = cm::to_xmi(chor::pda_handover_model());
  probe.put("probe", analysis);
  const std::size_t per_entry = probe.byte_count();
  ASSERT_GT(per_entry, 0u);

  // Room for exactly two entries.
  options.max_bytes = per_entry * 2 + per_entry / 2;
  cs::ResultCache cache(options);
  cache.put("a", analysis);
  cache.put("b", analysis);
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_TRUE(cache.get("a").has_value());  // refresh: "b" is now LRU
  cache.put("c", analysis);
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_EQ(
      registry.counter("choreo_cache_evictions_total", "").value(), 1u);
}

TEST(Service, CachedResultIsByteIdenticalToFreshRun) {
  // The acceptance check of the subsystem: on the PDA and Tomcat paper
  // models, a cache hit replays exactly the bytes a fresh pipeline run
  // produces.
  const std::vector<cm::Model> models = {chor::pda_handover_model(),
                                         chor::tomcat_model(true)};
  for (const cm::Model& model : models) {
    cs::Registry registry;
    cs::ResultCache cache({.registry = &registry});
    cs::SchedulerOptions options;
    options.workers = 2;
    options.cache = &cache;
    options.registry = &registry;
    cs::Scheduler scheduler(options);

    const cx::Document project = project_with_layout(model, 100);
    const std::string expected = reference_bytes(project, {});

    cs::JobHandle first = scheduler.submit(inline_request(project));
    const cs::JobResult& fresh = first.wait();
    ASSERT_EQ(fresh.status, cs::JobStatus::kDone) << fresh.error;
    EXPECT_FALSE(fresh.from_cache);
    EXPECT_EQ(fresh.attempts, 1u);
    EXPECT_EQ(fresh.annotated_xmi, expected);

    cs::JobHandle second = scheduler.submit(inline_request(project));
    const cs::JobResult& cached = second.wait();
    ASSERT_EQ(cached.status, cs::JobStatus::kDone) << cached.error;
    EXPECT_TRUE(cached.from_cache);
    EXPECT_EQ(cached.attempts, 0u);
    EXPECT_EQ(cached.annotated_xmi, expected);
  }
}

TEST(Service, CacheHitMergesTheRequestersOwnLayout) {
  const cm::Model model = chor::pda_handover_model();
  cs::Registry registry;
  cs::ResultCache cache({.registry = &registry});
  cs::SchedulerOptions options;
  options.workers = 1;
  options.cache = &cache;
  options.registry = &registry;
  cs::Scheduler scheduler(options);

  scheduler.submit(inline_request(project_with_layout(model, 100))).wait();
  const cx::Document moved = project_with_layout(model, 700);
  const cs::JobResult& result =
      scheduler.submit(inline_request(moved)).wait();
  ASSERT_EQ(result.status, cs::JobStatus::kDone) << result.error;
  // Layout-only edit: served from cache, yet with *this* layout restored —
  // byte-identical to a fresh run on the moved project.
  EXPECT_TRUE(result.from_cache);
  EXPECT_EQ(result.annotated_xmi, reference_bytes(moved, {}));
  EXPECT_NE(result.annotated_xmi.find("x=\"700\""), std::string::npos);
}

TEST(Service, StressManyJobsMixedHitMiss) {
  // ≥64 concurrent jobs across distinct requests and repeats; every job
  // must resolve to exactly the result of its own request (nothing lost,
  // duplicated or cross-wired), under real worker parallelism.
  constexpr std::size_t kDistinct = 8;
  constexpr std::size_t kRepeats = 8;
  constexpr std::size_t kJobs = kDistinct * kRepeats;

  std::vector<cs::JobRequest> distinct;
  std::vector<std::string> expected;
  for (std::size_t i = 0; i < kDistinct; ++i) {
    const bool pda = i % 2 == 0;
    const cm::Model model =
        pda ? chor::pda_handover_model() : chor::instant_message_model();
    chor::AnalysisOptions options;
    options.rates = {
        {pda ? "handover_1" : "transmit", 0.25 + 0.5 * static_cast<double>(i)}};
    distinct.push_back(
        inline_request(project_with_layout(model, static_cast<int>(i)),
                       options));
    expected.push_back(
        reference_bytes(distinct.back().project, distinct.back().options));
  }

  cs::Registry registry;
  cs::ResultCache cache({.registry = &registry});
  cs::SchedulerOptions options;
  options.workers = 4;
  options.queue_capacity = 16;  // forces backpressure at 64 submissions
  options.cache = &cache;
  options.registry = &registry;
  cs::Scheduler scheduler(options);

  std::vector<cs::JobHandle> handles;
  std::vector<std::size_t> request_of;
  handles.reserve(kJobs);
  for (std::size_t round = 0; round < kRepeats; ++round) {
    for (std::size_t i = 0; i < kDistinct; ++i) {
      handles.push_back(scheduler.submit(distinct[i]));
      request_of.push_back(i);
    }
  }

  std::size_t hits = 0;
  for (std::size_t j = 0; j < handles.size(); ++j) {
    const cs::JobResult& result = handles[j].wait();
    ASSERT_EQ(result.status, cs::JobStatus::kDone) << result.error;
    EXPECT_EQ(result.annotated_xmi, expected[request_of[j]])
        << "job " << j << " returned another request's result";
    hits += result.from_cache ? 1 : 0;
  }
  EXPECT_EQ(scheduler.in_flight(), 0u);

  // Every submission is accounted for, and repeats produced real hits.
  EXPECT_EQ(registry.counter("choreo_jobs_done_total", "").value(), kJobs);
  const std::uint64_t cache_hits =
      registry.counter("choreo_cache_hits_total", "").value();
  const std::uint64_t cache_misses =
      registry.counter("choreo_cache_misses_total", "").value();
  EXPECT_EQ(cache_hits + cache_misses, kJobs);
  EXPECT_EQ(cache_hits, hits);
  // Each distinct request runs at least once; with 8 repeats the warm
  // rounds dominate even if racing first-rounds miss more than once.
  EXPECT_GE(hits, kJobs / 2);
  EXPECT_GE(cache_misses, kDistinct);
}

TEST(Service, DeadlinePassedWhileQueuedTimesOut) {
  cs::SchedulerOptions options;
  options.workers = 1;
  cs::Scheduler scheduler(options);
  cs::JobRequest request =
      inline_request(cm::to_xmi(chor::pda_handover_model()));
  request.timeout_seconds = 1e-9;
  const cs::JobResult& result = scheduler.submit(std::move(request)).wait();
  EXPECT_EQ(result.status, cs::JobStatus::kTimedOut);
  EXPECT_EQ(result.error, "deadline passed while queued");
}

TEST(Service, DeadlineEnforcedCooperativelyWhileRunning) {
  cs::SchedulerOptions options;
  options.workers = 1;
  cs::Scheduler scheduler(options);
  cs::JobRequest request =
      inline_request(cm::to_xmi(chor::pda_handover_model()));
  request.timeout_seconds = 0.05;
  // The client checkpoint outsleeps the deadline, so the very next
  // scheduler check — same stage boundary — must abort the job.
  request.options.checkpoint = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  };
  const cs::JobResult& result = scheduler.submit(std::move(request)).wait();
  EXPECT_EQ(result.status, cs::JobStatus::kTimedOut);
  EXPECT_EQ(result.error, "deadline passed while running");
}

TEST(Service, CancelAbortsRunningJobAtNextCheckpoint) {
  cs::SchedulerOptions options;
  options.workers = 1;
  cs::Scheduler scheduler(options);

  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  cs::JobRequest request =
      inline_request(cm::to_xmi(chor::pda_handover_model()));
  request.options.checkpoint = [&] {
    started.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  cs::JobHandle handle = scheduler.submit(std::move(request));
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(handle.status(), cs::JobStatus::kRunning);
  handle.cancel();
  release.store(true);
  const cs::JobResult& result = handle.wait();
  EXPECT_EQ(result.status, cs::JobStatus::kCancelled);
  EXPECT_EQ(result.error, "cancelled while running");
}

TEST(Service, CancelledWhileQueuedNeverRuns) {
  cs::SchedulerOptions options;
  options.workers = 1;
  cs::Scheduler scheduler(options);

  // Pin the only worker so the second job stays queued.
  std::atomic<bool> release{false};
  cs::JobRequest blocker =
      inline_request(cm::to_xmi(chor::pda_handover_model()));
  blocker.options.checkpoint = [&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  cs::JobHandle running = scheduler.submit(std::move(blocker));

  cs::JobHandle queued = scheduler.submit(
      inline_request(cm::to_xmi(chor::pda_handover_model())));
  queued.cancel();
  release.store(true);

  EXPECT_EQ(running.wait().status, cs::JobStatus::kDone);
  const cs::JobResult& result = queued.wait();
  EXPECT_EQ(result.status, cs::JobStatus::kCancelled);
  EXPECT_EQ(result.error, "cancelled before running");
  EXPECT_EQ(result.attempts, 0u);
}

TEST(Service, RetryAtLowerAggregationSettingRecovers) {
  // First attempt trips the max_states safety bound; the retry runs with
  // aggregate = true and a scaled state budget and succeeds.
  cs::Registry registry;
  cs::SchedulerOptions options;
  options.workers = 1;
  options.max_retries = 1;
  options.retry_backoff_seconds = 0.001;
  options.retry_state_budget_factor = 100.0;
  options.registry = &registry;
  cs::Scheduler scheduler(options);

  cs::JobRequest request =
      inline_request(cm::to_xmi(chor::pda_handover_model()));
  request.options.max_states = 4;  // the PDA model has 10 markings
  cs::JobHandle handle = scheduler.submit(std::move(request));
  const cs::JobResult& result = handle.wait();
  ASSERT_EQ(result.status, cs::JobStatus::kDone) << result.error;
  EXPECT_EQ(result.attempts, 2u);
  EXPECT_EQ(result.aggregation_used, chor::Aggregation::kExact);
  EXPECT_EQ(registry.counter("choreo_job_retries_total", "").value(), 1u);
  EXPECT_FALSE(result.report.activity_graphs.empty());

  // The successful rung derived the quotient directly, so the progress
  // counters and peak-byte metrics describe the quotient — bounded by the
  // model's 10 raw markings — and the aggregation gauges record the block
  // count of the largest quotient derived.
  const choreo::util::BudgetUsage progress = handle.progress();
  EXPECT_GT(progress.states, 0u);
  EXPECT_GT(progress.peak_state_bytes, 0u);
  const auto blocks = registry.gauge("choreo_aggregate_blocks", "").value();
  EXPECT_GT(blocks, 0);
  EXPECT_EQ(static_cast<std::size_t>(blocks),
            result.report.activity_graphs[0].marking_count);

  // Without the scaled budget the retry fails too, and the error surfaces.
  cs::SchedulerOptions no_headroom = options;
  no_headroom.retry_state_budget_factor = 1.0;
  cs::Scheduler strict(no_headroom);
  cs::JobRequest doomed =
      inline_request(cm::to_xmi(chor::pda_handover_model()));
  doomed.options.max_states = 4;
  const cs::JobResult& failure = strict.submit(std::move(doomed)).wait();
  EXPECT_EQ(failure.status, cs::JobStatus::kFailed);
  EXPECT_NE(failure.error.find("state-space explosion"), std::string::npos);
  EXPECT_EQ(failure.attempts, 2u);
}

TEST(Service, RetryLadderLandsOnFluidBackend) {
  // A state-machine model whose chain grows exponentially in the client
  // count: the full solve trips max_states, the exact rung's quotient is
  // still far larger than the bound (C(6+2,2) population vectors x server
  // phases >> 16), and the job finally succeeds on the fluid rung — which
  // expands no state space at all.
  cs::Registry registry;
  cs::SchedulerOptions options;
  options.workers = 1;
  options.max_retries = 2;
  options.retry_backoff_seconds = 0.001;
  options.registry = &registry;
  cs::Scheduler scheduler(options);

  chor::TomcatParams params;
  params.clients = 6;
  cs::JobRequest request =
      inline_request(cm::to_xmi(chor::tomcat_model(true, params)));
  request.options.max_states = 16;
  const cs::JobResult& result = scheduler.submit(std::move(request)).wait();
  ASSERT_EQ(result.status, cs::JobStatus::kDone) << result.error;
  EXPECT_EQ(result.attempts, 3u);
  EXPECT_EQ(result.aggregation_used, chor::Aggregation::kFluid);
  ASSERT_EQ(result.report.state_machines.size(), 1u);

  // The fluid run reports vector-form sizes and ODE work, and its
  // downgrade and integration effort land in the metrics.
  const chor::StateMachineResult& machines = result.report.state_machines[0];
  EXPECT_GT(machines.state_count, 0u);
  // The sum of local state counts (6 clients x 3 + the server), not the
  // exponential product chain that tripped the bound.
  EXPECT_LE(machines.state_count, 30u);
  double probability_mass = 0.0;
  for (double p : machines.probabilities.at(0)) probability_mass += p;
  EXPECT_NEAR(probability_mass, 1.0, 1e-6);
  EXPECT_GT(result.timings.stages.fluid_steps, 0u);
  EXPECT_EQ(registry.counter("choreo_fluid_fallbacks_total", "").value(), 1u);
  EXPECT_EQ(registry.counter("choreo_fluid_steps_total", "").value(),
            result.timings.stages.fluid_steps);
}

TEST(Service, SubmitAppliesBackpressureAtQueueCapacity) {
  cs::SchedulerOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  cs::Scheduler scheduler(options);

  std::atomic<bool> release{false};
  cs::JobRequest blocker =
      inline_request(cm::to_xmi(chor::pda_handover_model()));
  blocker.options.checkpoint = [&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  std::vector<cs::JobHandle> handles;
  handles.push_back(scheduler.submit(std::move(blocker)));  // running
  handles.push_back(scheduler.submit(
      inline_request(cm::to_xmi(chor::pda_handover_model()))));  // queued
  EXPECT_EQ(scheduler.in_flight(), 2u);

  std::atomic<bool> third_accepted{false};
  std::thread submitter([&] {
    handles.push_back(scheduler.submit(
        inline_request(cm::to_xmi(chor::pda_handover_model()))));
    third_accepted.store(true);
  });
  // The third submission must block while the service is at capacity.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_accepted.load());

  release.store(true);
  submitter.join();
  EXPECT_TRUE(third_accepted.load());
  for (cs::JobHandle& handle : handles) {
    EXPECT_EQ(handle.wait().status, cs::JobStatus::kDone);
  }
}

TEST(Service, DestructorDrainsOutstandingJobs) {
  std::vector<cs::JobHandle> handles;
  {
    cs::SchedulerOptions options;
    options.workers = 2;
    cs::Scheduler scheduler(options);
    for (int i = 0; i < 8; ++i) {
      handles.push_back(scheduler.submit(
          inline_request(cm::to_xmi(chor::pda_handover_model()))));
    }
  }  // destructor joins only after every job reached a terminal state
  for (cs::JobHandle& handle : handles) {
    EXPECT_EQ(handle.wait().status, cs::JobStatus::kDone);
  }
}

TEST(Service, MalformedInputFailsCleanly) {
  cs::SchedulerOptions options;
  options.workers = 1;
  cs::Scheduler scheduler(options);
  cs::JobRequest request;
  request.input_path = "/nonexistent/project.xmi";
  const cs::JobResult& result = scheduler.submit(std::move(request)).wait();
  EXPECT_EQ(result.status, cs::JobStatus::kFailed);
  EXPECT_FALSE(result.error.empty());
}

TEST(Service, JobStatusNamesAreStable) {
  EXPECT_STREQ(cs::to_string(cs::JobStatus::kQueued), "queued");
  EXPECT_STREQ(cs::to_string(cs::JobStatus::kRunning), "running");
  EXPECT_STREQ(cs::to_string(cs::JobStatus::kDone), "done");
  EXPECT_STREQ(cs::to_string(cs::JobStatus::kFailed), "failed");
  EXPECT_STREQ(cs::to_string(cs::JobStatus::kCancelled), "cancelled");
  EXPECT_STREQ(cs::to_string(cs::JobStatus::kTimedOut), "timed_out");
  EXPECT_FALSE(cs::is_terminal(cs::JobStatus::kRunning));
  EXPECT_TRUE(cs::is_terminal(cs::JobStatus::kTimedOut));
}
