// Unit tests for the hash-consed PEPA term arena.
#include <gtest/gtest.h>

#include "pepa/ast.hpp"
#include "pepa/printer.hpp"
#include "util/error.hpp"

namespace cp = choreo::pepa;
namespace cu = choreo::util;

namespace {
struct Arena : ::testing::Test {
  cp::ProcessArena arena;
};
}  // namespace

TEST_F(Arena, ActionInterning) {
  const auto a = arena.action("read");
  EXPECT_EQ(arena.action("read"), a);
  EXPECT_NE(arena.action("write"), a);
  EXPECT_EQ(arena.action_name(a), "read");
  EXPECT_EQ(arena.action("tau"), cp::kTau);
  EXPECT_FALSE(arena.find_action("nothere").has_value());
}

TEST_F(Arena, HashConsingPrefix) {
  const auto stop = arena.stop();
  const auto a = arena.action("a");
  const auto p1 = arena.prefix(a, cp::Rate::active(1.0), stop);
  const auto p2 = arena.prefix(a, cp::Rate::active(1.0), stop);
  const auto p3 = arena.prefix(a, cp::Rate::active(2.0), stop);
  const auto p4 = arena.prefix(a, cp::Rate::passive(1.0), stop);
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, p3);
  EXPECT_NE(p1, p4);
}

TEST_F(Arena, HashConsingCooperationSetsNormalised) {
  const auto stop = arena.stop();
  const auto a = arena.action("a"), b = arena.action("b");
  const auto c1 = arena.cooperation(stop, {a, b}, stop);
  const auto c2 = arena.cooperation(stop, {b, a, a}, stop);
  EXPECT_EQ(c1, c2);
  EXPECT_NE(arena.cooperation(stop, {a}, stop), c1);
}

TEST_F(Arena, TauForbiddenInSets) {
  const auto stop = arena.stop();
  EXPECT_THROW(arena.cooperation(stop, {cp::kTau}, stop), cu::ModelError);
  EXPECT_THROW(arena.hiding(stop, {cp::kTau}), cu::ModelError);
}

TEST_F(Arena, ConstantsDeclareDefine) {
  const auto id = arena.declare("File");
  EXPECT_EQ(arena.declare("File"), id);
  EXPECT_FALSE(arena.is_defined(id));
  EXPECT_THROW(arena.body(id), cu::ModelError);
  arena.define(id, arena.stop());
  EXPECT_TRUE(arena.is_defined(id));
  EXPECT_EQ(arena.body(id), arena.stop());
  EXPECT_THROW(arena.define(id, arena.stop()), cu::ModelError);
  EXPECT_EQ(arena.constant("File"), arena.constant(id));
}

TEST_F(Arena, PrefixRejectsZeroRate) {
  EXPECT_THROW(arena.prefix(arena.action("a"), cp::Rate(), arena.stop()),
               cu::ModelError);
}

TEST_F(Arena, SetOperations) {
  const cp::ActionId a = 1, b = 2, c = 3;
  EXPECT_TRUE(cp::set_contains({a, b}, a));
  EXPECT_FALSE(cp::set_contains({a, b}, c));
  EXPECT_EQ(cp::set_union({a, c}, {b, c}), (std::vector<cp::ActionId>{a, b, c}));
  EXPECT_EQ(cp::set_intersection({a, b}, {b, c}), std::vector<cp::ActionId>{b});
}

TEST_F(Arena, AlphabetThroughConstantsAndHiding) {
  const auto a = arena.action("a"), b = arena.action("b"), h = arena.action("h");
  const auto x = arena.declare("X");
  // X = (a, 1).(h, 1).X
  arena.define(
      x, arena.prefix(a, cp::Rate::active(1.0),
                      arena.prefix(h, cp::Rate::active(1.0), arena.constant(x))));
  const auto term = arena.cooperation(
      arena.hiding(arena.constant(x), {h}),
      {}, arena.prefix(b, cp::Rate::active(1.0), arena.stop()));
  const auto alpha = cp::alphabet(arena, term);
  EXPECT_EQ(alpha, (std::vector<cp::ActionId>{a, b}));  // h hidden, tau excluded
}

TEST_F(Arena, AlphabetOfRecursiveConstantTerminates) {
  const auto a = arena.action("a");
  const auto x = arena.declare("Loop");
  arena.define(x, arena.prefix(a, cp::Rate::active(1.0), arena.constant(x)));
  EXPECT_EQ(cp::alphabet(arena, arena.constant(x)),
            std::vector<cp::ActionId>{a});
}

TEST_F(Arena, PrinterPrecedence) {
  const auto a = arena.action("a"), b = arena.action("b");
  const auto stop = arena.stop();
  const auto p = arena.prefix(a, cp::Rate::active(1.0), stop);
  const auto q = arena.prefix(b, cp::Rate::passive(1.0), stop);
  EXPECT_EQ(cp::to_string(arena, arena.choice(p, q)),
            "(a, 1).Stop + (b, infty).Stop");
  EXPECT_EQ(cp::to_string(arena, arena.cooperation(p, {a}, q)),
            "(a, 1).Stop <a> (b, infty).Stop");
  EXPECT_EQ(cp::to_string(arena, arena.cooperation(arena.choice(p, q), {}, stop)),
            "((a, 1).Stop + (b, infty).Stop) || Stop");
  EXPECT_EQ(cp::to_string(arena, arena.hiding(arena.constant("X"), {a, b})),
            "X/{a, b}");
}
