// Tests for quotient-direct derivation (DeriveOptions::aggregate): the
// exploration engine canonicalizes every successor before interning, so
// the explored space *is* the strong-equivalence quotient.  The post-hoc
// lumping (pepa::aggregate / pepanet::aggregate) acts as the correctness
// oracle throughout: block counts must agree exactly, the canonical map
// must induce the same partition as the coarsest labelled lumping, and
// quotient steady states must match block-aggregated full distributions
// to 1e-9.  The families' closed-form quotient sizes pin the counts, and
// the acceptance test shows a quotient derivation completing under state
// and byte budgets the full chain provably exceeds.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "ctmc/steady_state.hpp"
#include "pepa/aggregate.hpp"
#include "pepa/canonical.hpp"
#include "pepa/families.hpp"
#include "pepa/measures.hpp"
#include "pepa/parser.hpp"
#include "pepa/printer.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "pepanet/net.hpp"
#include "pepanet/netaggregate.hpp"
#include "pepanet/netcanonical.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"

namespace {

using namespace choreo;
namespace cc = choreo::ctmc;
namespace cp = choreo::pepa;
namespace cn = choreo::pepanet;

/// Derives the full space and the quotient-direct space of `model` from
/// one shared arena, then checks the tentpole invariants:
///  - the quotient state count equals the coarsest labelled lumping's
///    block count on the full space (the post-hoc oracle);
///  - the canonical map (full state -> canonical term -> quotient index)
///    induces *exactly* the oracle's partition, not merely one of equal
///    size;
///  - the block-aggregated full steady state equals the quotient steady
///    state to 1e-9, and every per-action throughput survives.
void expect_quotient_matches_oracle(cp::Model& model) {
  cp::Semantics semantics(model.arena());
  const cp::StateSpace full =
      cp::StateSpace::derive(semantics, model.system());
  cp::DeriveOptions quotient_options;
  quotient_options.aggregate = true;
  const cp::StateSpace quotient =
      cp::StateSpace::derive(semantics, model.system(), quotient_options);
  EXPECT_FALSE(full.aggregated());
  EXPECT_TRUE(quotient.aggregated());

  const cc::LabelledLumping oracle = cp::aggregate(full);
  ASSERT_EQ(quotient.state_count(), oracle.block_count);

  // The canonical map must refine-and-equal the coarsest partition: two
  // full states share an oracle block iff they canonicalize to the same
  // quotient state.
  cp::Canonicalizer canonicalizer(model.arena());
  std::vector<std::size_t> quotient_of(full.state_count());
  std::map<std::size_t, std::set<std::size_t>> blocks_hit;
  for (std::size_t i = 0; i < full.state_count(); ++i) {
    const auto index = quotient.index_of(canonicalizer.canonical(full.state_term(i)));
    ASSERT_TRUE(index.has_value()) << "canonical form of full state " << i
                                   << " missing from the quotient space";
    quotient_of[i] = *index;
    blocks_hit[*index].insert(oracle.block_of[i]);
  }
  for (const auto& [quotient_state, oracle_blocks] : blocks_hit) {
    EXPECT_EQ(oracle_blocks.size(), 1u)
        << "quotient state " << quotient_state
        << " spans several coarsest-lumping blocks";
  }
  EXPECT_EQ(blocks_hit.size(), oracle.block_count);

  // Steady state: block-aggregated full distribution == quotient solve.
  const auto pi_full = cc::steady_state(full.generator()).distribution;
  const auto pi_quotient = cc::steady_state(quotient.generator()).distribution;
  std::vector<double> aggregated(quotient.state_count(), 0.0);
  for (std::size_t i = 0; i < full.state_count(); ++i) {
    aggregated[quotient_of[i]] += pi_full[i];
  }
  ASSERT_EQ(aggregated.size(), pi_quotient.size());
  for (std::size_t b = 0; b < aggregated.size(); ++b) {
    EXPECT_NEAR(aggregated[b], pi_quotient[b], 1e-9) << "block " << b;
  }

  // Every per-action throughput is preserved on the quotient.
  const auto action_count =
      static_cast<cp::ActionId>(model.arena().action_count());
  for (cp::ActionId action = 0; action < action_count; ++action) {
    EXPECT_NEAR(cp::action_throughput(full, pi_full, action),
                cp::action_throughput(quotient, pi_quotient, action), 1e-9)
        << "action " << model.arena().action_name(action);
  }
}

TEST(QuotientPepa, ClientServerMatchesClosedFormAndOracle) {
  cp::ClientServerParams params;
  params.servers = 3;
  cp::Model model = cp::client_server(4, params);
  {
    cp::Semantics semantics(model.arena());
    cp::DeriveOptions options;
    options.aggregate = true;
    const auto quotient =
        cp::StateSpace::derive(semantics, model.system(), options);
    EXPECT_EQ(quotient.state_count(), cp::client_server_quotient_states(4, 3));
    EXPECT_GT(quotient.stats().canonical_rewrites, 0u);
  }
  expect_quotient_matches_oracle(model);
}

TEST(QuotientPepa, PdaHandoverMatchesClosedFormAndOracle) {
  cp::PdaHandoverParams params;
  params.transmitters = 2;
  cp::Model model = cp::pda_handover(3, params);
  {
    cp::Semantics semantics(model.arena());
    cp::DeriveOptions options;
    options.aggregate = true;
    const auto quotient =
        cp::StateSpace::derive(semantics, model.system(), options);
    EXPECT_EQ(quotient.state_count(), cp::pda_handover_quotient_states(3, 2));
  }
  expect_quotient_matches_oracle(model);
}

TEST(QuotientPepa, RingIsTheNoCollapseControl) {
  // Ring stations carry distinct per-station action types: nothing is
  // exchangeable, so canonicalization must not merge anything and the
  // quotient equals the full space.
  cp::Model model = cp::ring(4);
  cp::Semantics semantics(model.arena());
  const auto full = cp::StateSpace::derive(semantics, model.system());
  cp::DeriveOptions options;
  options.aggregate = true;
  const auto quotient =
      cp::StateSpace::derive(semantics, model.system(), options);
  EXPECT_EQ(full.state_count(), cp::ring_states(4));
  EXPECT_EQ(quotient.state_count(), full.state_count());
  expect_quotient_matches_oracle(model);
}

TEST(QuotientPepa, ByteIdenticalAcrossLaneCounts) {
  // The canonical representative is chosen by structural order, never by
  // interning order, so the quotient (states *and* transitions) is
  // identical at every lane count.  Fresh models per lane: nothing can
  // leak through a shared arena.
  using Rendered = std::pair<std::vector<std::string>,
                             std::vector<std::tuple<std::size_t, std::size_t,
                                                    std::uint32_t, double>>>;
  auto render = [](std::size_t threads) -> Rendered {
    cp::ClientServerParams params;
    params.servers = 3;
    cp::Model model = cp::client_server(5, params);
    cp::Semantics semantics(model.arena());
    cp::DeriveOptions options;
    options.aggregate = true;
    options.threads = threads;
    const auto space =
        cp::StateSpace::derive(semantics, model.system(), options);
    Rendered out;
    for (std::size_t i = 0; i < space.state_count(); ++i) {
      out.first.push_back(cp::to_string(model.arena(), space.state_term(i)));
    }
    for (const auto& t : space.transitions()) {
      out.second.emplace_back(t.source, t.target, t.action, t.rate);
    }
    return out;
  };
  const Rendered lane1 = render(1);
  EXPECT_EQ(lane1.first.size(), cp::client_server_quotient_states(5, 3));
  EXPECT_EQ(render(2), lane1);
  EXPECT_EQ(render(8), lane1);
}

TEST(QuotientPepa, CompletesUnderBudgetTheFullChainExceeds) {
  // The acceptance gate: client_server(120, 2) has C(122, 2) = 7381 full
  // states but a 3-state quotient.  Under a 4000-state cap the full
  // derivation must abort with BudgetError while the quotient-direct one
  // completes — and reports the closed-form block count.
  cp::ClientServerParams params;
  params.servers = 2;
  ASSERT_EQ(cp::client_server_states(120, 2), 7381u);
  ASSERT_EQ(cp::client_server_quotient_states(120, 2), 3u);

  {
    cp::Model model = cp::client_server(120, params);
    cp::Semantics semantics(model.arena());
    cp::DeriveOptions options;
    options.max_states = 4000;
    EXPECT_THROW(cp::StateSpace::derive(semantics, model.system(), options),
                 util::BudgetError);
  }
  {
    cp::Model model = cp::client_server(120, params);
    cp::Semantics semantics(model.arena());
    cp::DeriveOptions options;
    options.max_states = 4000;
    options.aggregate = true;
    const auto quotient =
        cp::StateSpace::derive(semantics, model.system(), options);
    EXPECT_EQ(quotient.state_count(), 3u);
    EXPECT_GT(quotient.stats().canonical_rewrites, 0u);
  }

  // Same story in bytes: a budget ceiling the full chain blows through
  // within its first levels leaves the quotient derivation untouched.
  {
    cp::Model model = cp::client_server(120, params);
    cp::Semantics semantics(model.arena());
    util::Budget budget;
    budget.set_max_state_bytes(4096);
    cp::DeriveOptions options;
    options.budget = &budget;
    EXPECT_THROW(cp::StateSpace::derive(semantics, model.system(), options),
                 util::BudgetError);
  }
  {
    cp::Model model = cp::client_server(120, params);
    cp::Semantics semantics(model.arena());
    util::Budget budget;
    budget.set_max_state_bytes(4096);
    cp::DeriveOptions options;
    options.budget = &budget;
    options.aggregate = true;
    const auto quotient =
        cp::StateSpace::derive(semantics, model.system(), options);
    EXPECT_EQ(quotient.state_count(), 3u);
    EXPECT_EQ(budget.usage().states, 3u);
    EXPECT_LE(budget.usage().peak_state_bytes, 4096u);
  }
}

TEST(QuotientPepa, CanonicalizerIsIdempotentAndOrderInvariant) {
  cp::Model model;
  cp::ProcessArena& arena = model.arena();
  const auto tick = arena.action("tick");
  auto cyclic = [&](const char* name, double rate) {
    const auto id = arena.declare(name);
    arena.define(id, arena.prefix(tick, cp::Rate::active(rate),
                                  arena.constant(id)));
    return arena.constant(id);
  };
  const auto a = cyclic("A", 1.0);
  const auto b = cyclic("B", 2.0);
  const auto c = cyclic("C", 3.0);

  cp::Canonicalizer canonicalizer(arena);
  // Every bracketing and ordering of {A, B, C} over the same (empty)
  // cooperation set canonicalizes to one representative.
  const auto left_deep =
      arena.cooperation(arena.cooperation(a, {}, b), {}, c);
  const auto right_deep =
      arena.cooperation(b, {}, arena.cooperation(c, {}, a));
  const auto reversed =
      arena.cooperation(arena.cooperation(c, {}, b), {}, a);
  const auto canonical = canonicalizer.canonical(left_deep);
  EXPECT_EQ(canonicalizer.canonical(right_deep), canonical);
  EXPECT_EQ(canonicalizer.canonical(reversed), canonical);
  // Idempotence: the canonical form is its own representative.
  EXPECT_EQ(canonicalizer.canonical(canonical), canonical);

  // Non-empty sets commute too, but only *matching* sets join a spine: a
  // {tick}-cooperation nested under an empty-set one keeps its boundary.
  const auto synced = arena.cooperation(a, {tick}, b);
  const auto swapped = arena.cooperation(b, {tick}, a);
  EXPECT_EQ(canonicalizer.canonical(synced), canonicalizer.canonical(swapped));
  const auto mixed = arena.cooperation(synced, {}, c);
  const auto mixed_swapped = arena.cooperation(c, {}, swapped);
  EXPECT_EQ(canonicalizer.canonical(mixed),
            canonicalizer.canonical(mixed_swapped));

  // structural_compare is a strict weak order with equality on identity.
  EXPECT_EQ(cp::structural_compare(arena, a, a), 0);
  const int ab = cp::structural_compare(arena, a, b);
  EXPECT_NE(ab, 0);
  EXPECT_EQ(cp::structural_compare(arena, b, a), -ab);
}

// --- PEPA nets -------------------------------------------------------------

/// Three independent identical tokens cycling Work -> Rest in one place:
/// 2^3 = 8 raw markings, 4 population-vector blocks.
cn::PepaNet three_cell_net() {
  cn::PepaNet net;
  auto& arena = net.arena();
  const auto work = arena.action("work");
  const auto rest = arena.action("rest");
  const auto working = arena.declare("Working");
  const auto resting = arena.declare("Resting");
  arena.define(working, arena.prefix(work, cp::Rate::active(2.0),
                                     arena.constant(resting)));
  arena.define(resting, arena.prefix(rest, cp::Rate::active(3.0),
                                     arena.constant(working)));
  const auto type = net.add_token_type("T", arena.constant(working));
  const auto place = net.add_place("p");
  net.add_cell(place, type, arena.constant(working));
  net.add_cell(place, type, arena.constant(working));
  net.add_cell(place, type, arena.constant(working));
  net.set_coop_sets(place, {{}, {}});
  return net;
}

TEST(QuotientNet, SymmetricCellsCollapseToPopulationCounts) {
  cn::PepaNet full_net = three_cell_net();
  cn::NetSemantics full_semantics(full_net);
  const auto full = cn::NetStateSpace::derive(full_semantics);
  ASSERT_EQ(full.marking_count(), 8u);

  cn::PepaNet quotient_net = three_cell_net();
  cn::NetSemantics quotient_semantics(quotient_net);
  cn::NetDeriveOptions options;
  options.aggregate = true;
  const auto quotient = cn::NetStateSpace::derive(quotient_semantics, options);
  EXPECT_TRUE(quotient.aggregated());
  EXPECT_EQ(quotient.marking_count(), 4u);  // 0..3 resting tokens

  const cc::LabelledLumping oracle = cn::aggregate(full);
  ASSERT_EQ(oracle.block_count, quotient.marking_count());

  // Steady state through the marking-canonical map, against the quotient
  // solve, to 1e-9 — the same oracle discipline as the PEPA side.
  cn::MarkingCanonicalizer canonicalizer(full_net);
  EXPECT_EQ(canonicalizer.group_count(), 1u);
  const auto pi_full = cc::steady_state(full.generator()).distribution;
  const auto pi_quotient = cc::steady_state(quotient.generator()).distribution;
  std::vector<double> aggregated(quotient.marking_count(), 0.0);
  for (std::size_t i = 0; i < full.marking_count(); ++i) {
    cn::Marking marking = full.marking(i);
    canonicalizer(marking);
    // The two nets are distinct objects but share no interning, so map by
    // rendered slot terms: canonical markings are term-for-term equal.
    std::optional<std::size_t> target;
    for (std::size_t j = 0; j < quotient.marking_count(); ++j) {
      const cn::Marking& candidate = quotient.marking(j);
      bool equal = candidate.size() == marking.size();
      for (std::size_t s = 0; equal && s < marking.size(); ++s) {
        const bool vacant_a = marking[s] == cn::kVacant;
        const bool vacant_b = candidate[s] == cn::kVacant;
        equal = vacant_a == vacant_b &&
                (vacant_a ||
                 cp::to_string(full_net.arena(), marking[s]) ==
                     cp::to_string(quotient_net.arena(), candidate[s]));
      }
      if (equal) {
        target = j;
        break;
      }
    }
    ASSERT_TRUE(target.has_value()) << "canonical marking " << i
                                    << " missing from quotient graph";
    aggregated[*target] += pi_full[i];
  }
  for (std::size_t b = 0; b < aggregated.size(); ++b) {
    EXPECT_NEAR(aggregated[b], pi_quotient[b], 1e-9) << "block " << b;
  }

  const auto work = *full_net.arena().find_action("work");
  const auto quotient_work = *quotient_net.arena().find_action("work");
  EXPECT_NEAR(cn::action_throughput(full, pi_full, work),
              cn::action_throughput(quotient, pi_quotient, quotient_work),
              1e-9);
}

/// Two tokens hopping between two 2-cell places with a local work cycle:
/// firing moves and local moves both cross the canonical map.
cn::PepaNet hopping_net() {
  cn::PepaNet net;
  auto& arena = net.arena();
  const auto work = arena.action("work");
  const auto hop = arena.action("hop");
  const auto stay = arena.declare("Stay");
  const auto go = arena.declare("Go");
  arena.define(stay,
               arena.prefix(work, cp::Rate::active(2.0), arena.constant(go)));
  arena.define(go,
               arena.prefix(hop, cp::Rate::active(1.0), arena.constant(stay)));
  const auto type = net.add_token_type("T", arena.constant(stay));
  const auto p = net.add_place("p");
  net.add_cell(p, type, arena.constant(stay));
  net.add_cell(p, type, arena.constant(stay));
  net.set_coop_sets(p, {{}});
  const auto q = net.add_place("q");
  net.add_cell(q, type);
  net.add_cell(q, type);
  net.set_coop_sets(q, {{}});
  net.add_transition("hop", cp::Rate::passive(1.0), {p}, {q});
  net.add_transition("hop", cp::Rate::passive(1.0), {q}, {p});
  return net;
}

TEST(QuotientNet, FiringMovesAgreeWithPostHocOracle) {
  cn::PepaNet full_net = hopping_net();
  cn::NetSemantics full_semantics(full_net);
  const auto full = cn::NetStateSpace::derive(full_semantics);

  cn::PepaNet quotient_net = hopping_net();
  cn::NetSemantics quotient_semantics(quotient_net);
  cn::NetDeriveOptions options;
  options.aggregate = true;
  const auto quotient = cn::NetStateSpace::derive(quotient_semantics, options);

  // The canonical map collapses cell permutations *within* each place;
  // this net additionally has a p <-> q exchange symmetry only the global
  // coarsest lumping can see.  So the on-the-fly quotient sits strictly
  // between: a sound refinement of the coarsest partition, strictly
  // smaller than the raw graph — and lumping the quotient post hoc must
  // land on exactly the coarsest block count the full graph yields
  // (nothing was lost by aggregating on the fly).
  const cc::LabelledLumping oracle = cn::aggregate(full);
  EXPECT_LT(quotient.marking_count(), full.marking_count());
  EXPECT_GE(quotient.marking_count(), oracle.block_count);
  EXPECT_EQ(cn::aggregate(quotient).block_count, oracle.block_count);
  EXPECT_GT(quotient.stats().canonical_rewrites, 0u);

  const auto pi_full = cc::steady_state(full.generator()).distribution;
  const auto pi_quotient = cc::steady_state(quotient.generator()).distribution;
  for (const char* name : {"work", "hop"}) {
    const auto full_action = *full_net.arena().find_action(name);
    const auto quotient_action = *quotient_net.arena().find_action(name);
    EXPECT_NEAR(cn::action_throughput(full, pi_full, full_action),
                cn::action_throughput(quotient, pi_quotient, quotient_action),
                1e-9)
        << name;
  }
}

TEST(QuotientNet, MarkingGraphDeterministicAcrossLaneCounts) {
  using Rendered = std::pair<std::vector<std::string>,
                             std::vector<std::tuple<std::size_t, std::size_t,
                                                    std::uint32_t, double>>>;
  auto render = [](std::size_t threads) -> Rendered {
    cn::PepaNet net = hopping_net();
    cn::NetSemantics semantics(net);
    cn::NetDeriveOptions options;
    options.aggregate = true;
    options.threads = threads;
    const auto space = cn::NetStateSpace::derive(semantics, options);
    Rendered out;
    for (std::size_t i = 0; i < space.marking_count(); ++i) {
      std::string rendered;
      for (const auto slot : space.marking(i)) {
        rendered += slot == cn::kVacant ? std::string("-")
                                        : cp::to_string(net.arena(), slot);
        rendered += '|';
      }
      out.first.push_back(std::move(rendered));
    }
    for (const auto& t : space.transitions()) {
      out.second.emplace_back(t.source, t.target, t.action, t.rate);
    }
    return out;
  };
  const Rendered lane1 = render(1);
  EXPECT_EQ(render(2), lane1);
  EXPECT_EQ(render(8), lane1);
}

// --- design-space sweeps over the quotient ---------------------------------

TEST(QuotientSweep, SweepOverQuotientStructureMatchesFullSweep) {
  // The canonical partition depends only on structure, never on rate
  // values, so one quotient derivation can back a whole sweep: every
  // point's measures must match the full-structure sweep to 1e-9.
  const char* source = R"(
    req = 1.5;
    resp = 2.0;
    Client = (request, req).ClientWaiting;
    ClientWaiting = (response, infty).Client;
    Server = (request, infty).ServerBusy;
    ServerBusy = (response, resp).Server;
    System = (Client || Client || Client)
             <request, response> (Server || Server);
    @system System;
  )";
  sweep::SweepSpec spec;
  spec.axes = {sweep::Axis::list("req", {0.5, 1.5, 4.0})};

  cp::Model full_model = cp::parse_model(source, "full");
  sweep::SweepOptions full_options;
  full_options.threads = 1;
  const sweep::SweepTable full = sweep::sweep(full_model, spec, full_options);

  cp::Model quotient_model = cp::parse_model(source, "quotient");
  sweep::SweepOptions quotient_options;
  quotient_options.threads = 1;
  quotient_options.derive.aggregate = true;
  const sweep::SweepTable quotient =
      sweep::sweep(quotient_model, spec, quotient_options);

  EXPECT_EQ(full.state_count, cp::client_server_states(3, 2));
  EXPECT_EQ(quotient.state_count, cp::client_server_quotient_states(3, 2));
  EXPECT_EQ(quotient.derivations, 1u);
  ASSERT_EQ(quotient.rows.size(), full.rows.size());
  ASSERT_EQ(quotient.measures, full.measures);
  for (std::size_t r = 0; r < full.rows.size(); ++r) {
    ASSERT_TRUE(full.rows[r].ok()) << full.rows[r].error;
    ASSERT_TRUE(quotient.rows[r].ok()) << quotient.rows[r].error;
    ASSERT_EQ(quotient.rows[r].measures.size(), full.rows[r].measures.size());
    for (std::size_t m = 0; m < full.rows[r].measures.size(); ++m) {
      EXPECT_NEAR(quotient.rows[r].measures[m], full.rows[r].measures[m], 1e-9)
          << "row " << r << " measure " << full.measures[m];
    }
  }
}

}  // namespace
