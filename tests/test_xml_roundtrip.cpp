// Parse → write → parse round-trip guarantees of the XML substrate.
//
// Two layers:
//  - a property test over randomly generated documents (deterministic
//    xoshiro seeds, so failures reproduce): writing a document and parsing
//    the bytes back must restore the identical tree, and writing again must
//    produce the identical bytes (write∘parse is the identity on writer
//    output);
//  - a committed regression corpus (tests/corpus/): every valid document
//    must parse and round-trip, every invalid one must raise ParseError —
//    including the char-reference and DOCTYPE-quoting parser regressions.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "xml/dom.hpp"
#include "xml/parse.hpp"
#include "xml/write.hpp"

namespace cx = choreo::xml;
namespace cu = choreo::util;
namespace fs = std::filesystem;

namespace {

/// Random document generator.  Constraints keep generated trees inside the
/// writer's round-trippable domain: no whitespace-only text (dropped on
/// parse by default), no adjacent text nodes (merged on parse), no "--" in
/// comments and no "]]>" in CDATA (close their delimiters early).
class DocumentGenerator {
 public:
  explicit DocumentGenerator(std::uint64_t seed) : rng_(seed) {}

  cx::Document generate() {
    cx::Document document;
    document.set_root(element(0));
    return document;
  }

 private:
  static constexpr std::string_view kNameStart =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_";
  static constexpr std::string_view kNameRest =
      "abcdefghijklmnopqrstuvwxyz0123456789_-.:";
  // Attribute/text pools deliberately include every character the writer
  // escapes, plus multi-byte UTF-8 sequences (inserted atomically).
  static constexpr std::string_view kValueChars =
      "abcxyz 0123456789<>&\"'\n\t=;#[]()";
  static constexpr std::string_view kCommentChars =
      "abc xyz 0123456789 <>&";
  static constexpr std::string_view kCdataChars =
      "abc xyz 0123456789 <>&\"'";

  char pick(std::string_view pool) {
    return pool[static_cast<std::size_t>(rng_.below(pool.size()))];
  }

  std::string name() {
    std::string out;
    out.push_back(pick(kNameStart));
    const std::size_t extra = rng_.below(8);
    for (std::size_t i = 0; i < extra; ++i) out.push_back(pick(kNameRest));
    return out;
  }

  std::string value(std::string_view pool) {
    std::string out;
    const std::size_t length = rng_.below(24);
    for (std::size_t i = 0; i < length; ++i) {
      if (pool == kValueChars && rng_.below(12) == 0) {
        static constexpr std::string_view kUnicode[] = {
            "\xC3\xA9" /* é */, "\xE2\x82\xAC" /* € */,
            "\xF0\x9F\x98\x80" /* emoji */};
        out += kUnicode[rng_.below(3)];
      } else {
        out.push_back(pick(pool));
      }
    }
    return out;
  }

  std::string text() {
    // Guarantee a non-whitespace character so the default parse options
    // never classify the node as ignorable.
    return value(kValueChars) + pick(kNameStart);
  }

  cx::Node element(int depth) {
    cx::Node node = cx::Node::element(name());
    const std::size_t attribute_count = rng_.below(4);
    for (std::size_t a = 0; a < attribute_count; ++a) {
      // Indexed names sidestep the parser's duplicate-attribute rejection.
      node.set_attr(name() + std::to_string(a), value(kValueChars));
    }
    if (depth >= 4) return node;
    const std::size_t child_count = rng_.below(5);
    bool last_was_text = false;
    for (std::size_t c = 0; c < child_count; ++c) {
      switch (rng_.below(last_was_text ? 3 : 4)) {
        case 0:
          node.add_child(element(depth + 1));
          last_was_text = false;
          break;
        case 1:
          node.add_child(cx::Node::comment(value(kCommentChars)));
          last_was_text = false;
          break;
        case 2:
          node.add_child(cx::Node::cdata(value(kCdataChars)));
          last_was_text = false;
          break;
        default:
          node.add_text(text());
          last_was_text = true;
          break;
      }
    }
    return node;
  }

  cu::Xoshiro256 rng_;
};

std::string read_file(const fs::path& path) {
  std::ifstream stream(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return buffer.str();
}

std::vector<fs::path> corpus_files(const char* subdirectory) {
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(fs::path(CHOREO_CORPUS_DIR) / subdirectory)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

TEST(RoundTripProperty, WriteParseWriteIsStableOnRandomDocuments) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    DocumentGenerator generator(seed);
    const cx::Document original = generator.generate();

    const std::string rendered = cx::to_string(original);
    cx::Document reparsed;
    ASSERT_NO_THROW(reparsed = cx::parse_document(rendered))
        << "seed " << seed << "\n" << rendered;
    EXPECT_TRUE(original.root().deep_equals(reparsed.root()))
        << "seed " << seed << "\n" << rendered;
    EXPECT_EQ(cx::to_string(reparsed), rendered) << "seed " << seed;
  }
}

TEST(RoundTripProperty, CompactModeRoundTripsToo) {
  cx::WriteOptions compact;
  compact.indent = 0;
  compact.declaration = false;
  for (std::uint64_t seed = 100; seed <= 140; ++seed) {
    DocumentGenerator generator(seed);
    const cx::Document original = generator.generate();
    const std::string rendered = cx::to_string(original, compact);
    const cx::Document reparsed = cx::parse_document(rendered);
    EXPECT_TRUE(original.root().deep_equals(reparsed.root()))
        << "seed " << seed << "\n" << rendered;
    EXPECT_EQ(cx::to_string(reparsed, compact), rendered)
        << "seed " << seed;
  }
}

TEST(Corpus, ValidDocumentsParseAndRoundTrip) {
  const std::vector<fs::path> files = corpus_files("valid");
  ASSERT_FALSE(files.empty());
  for (const fs::path& path : files) {
    const std::string source = read_file(path);
    cx::Document document;
    ASSERT_NO_THROW(document = cx::parse_document(source))
        << path.filename();
    const std::string rendered = cx::to_string(document);
    cx::Document reparsed;
    ASSERT_NO_THROW(reparsed = cx::parse_document(rendered))
        << path.filename();
    EXPECT_TRUE(document.root().deep_equals(reparsed.root()))
        << path.filename();
    EXPECT_EQ(cx::to_string(reparsed), rendered) << path.filename();
  }
}

TEST(Corpus, InvalidDocumentsRaisePositionedParseErrors) {
  const std::vector<fs::path> files = corpus_files("invalid");
  ASSERT_FALSE(files.empty());
  for (const fs::path& path : files) {
    const std::string source = read_file(path);
    try {
      cx::parse_document(source);
      ADD_FAILURE() << path.filename() << ": expected ParseError";
    } catch (const cu::ParseError& error) {
      EXPECT_GE(error.line(), 1u) << path.filename();
      EXPECT_GE(error.column(), 1u) << path.filename();
    }
  }
}
