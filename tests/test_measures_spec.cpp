// Tests for the .measures specification language and its evaluators.
#include <gtest/gtest.h>

#include "choreographer/extract_activity.hpp"
#include "choreographer/measures_spec.hpp"
#include "choreographer/paper_models.hpp"
#include "ctmc/steady_state.hpp"
#include "pepa/parser.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "util/error.hpp"

namespace chor = choreo::chor;
namespace cp = choreo::pepa;
namespace cn = choreo::pepanet;
namespace cc = choreo::ctmc;
namespace cu = choreo::util;

TEST(MeasuresSpec, ParsesAllKinds) {
  const auto specs = chor::parse_measures(R"(
    // what we want to know
    throughput  transmit;
    probability InStream;
    population  Busy;
    occupancy   p2;
    mean_tokens p1
    # trailing semicolons optional, comments in all styles
  )");
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].kind, chor::MeasureSpec::Kind::kThroughput);
  EXPECT_EQ(specs[0].name, "transmit");
  EXPECT_EQ(specs[4].kind, chor::MeasureSpec::Kind::kMeanTokens);
  EXPECT_EQ(specs[1].to_string(), "probability InStream");
}

TEST(MeasuresSpec, ParseErrors) {
  EXPECT_THROW(chor::parse_measures("frequency x;"), cu::ParseError);
  EXPECT_THROW(chor::parse_measures("throughput;"), cu::ParseError);
  EXPECT_THROW(chor::parse_measures("throughput a b;"), cu::ParseError);
  EXPECT_THROW(chor::parse_measures("throughput 9bad;"), cu::ParseError);
}

TEST(MeasuresSpec, EvaluatesOnPepaModel) {
  auto model = cp::parse_model(R"(
    File      = (openread, 2.0).InStream + (openwrite, 2.0).OutStream;
    InStream  = (read, 1.8).InStream + (close, 3.0).File;
    OutStream = (write, 1.2).OutStream + (close, 3.0).File;
    @system File;
  )");
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  const auto pi = cc::steady_state(space.generator()).distribution;
  const auto values = chor::evaluate_measures(
      chor::parse_measures("throughput read;\nprobability InStream;\n"
                           "population File;\noccupancy p2;\n"
                           "throughput unknown_action;"),
      model.arena(), space, pi);
  ASSERT_EQ(values.size(), 5u);
  EXPECT_TRUE(values[0].supported);
  EXPECT_NEAR(values[0].value, 0.5142857142857143, 1e-12);
  EXPECT_TRUE(values[1].supported);
  EXPECT_NEAR(values[1].value, 2.0 / 7.0, 1e-12);
  EXPECT_TRUE(values[2].supported);
  EXPECT_NEAR(values[2].value, 3.0 / 7.0, 1e-12);
  EXPECT_FALSE(values[3].supported);  // place measure on a plain model
  EXPECT_FALSE(values[4].supported);  // unknown action
  EXPECT_FALSE(values[4].note.empty());
}

TEST(MeasuresSpec, EvaluatesOnPepaNet) {
  auto extraction = chor::extract_activity_graph(
      chor::instant_message_model().activity_graphs()[0]);
  cn::NetSemantics semantics(extraction.net);
  const auto space = cn::NetStateSpace::derive(semantics);
  const auto pi = cc::steady_state(space.generator()).distribution;
  const auto values = chor::evaluate_measures(
      chor::parse_measures("throughput transmit;\noccupancy p2;\n"
                           "mean_tokens p1;\noccupancy nowhere;\n"
                           "population f_write;"),
      extraction.net, space, pi);
  ASSERT_EQ(values.size(), 5u);
  EXPECT_TRUE(values[0].supported);
  EXPECT_GT(values[0].value, 0.0);
  EXPECT_TRUE(values[1].supported);
  EXPECT_TRUE(values[2].supported);
  // Exactly one token: occupancy p1 + occupancy p2 = 1.
  EXPECT_NEAR(values[1].value + values[2].value, 1.0, 1e-10);
  EXPECT_FALSE(values[3].supported);  // unknown place
  EXPECT_FALSE(values[4].supported);  // population on a net
}

TEST(MeasuresSpec, NetDerivativeProbability) {
  auto extraction = chor::extract_activity_graph(
      chor::instant_message_model().activity_graphs()[0]);
  cn::NetSemantics semantics(extraction.net);
  const auto space = cn::NetStateSpace::derive(semantics);
  const auto pi = cc::steady_state(space.generator()).distribution;
  // The token is always in exactly one named derivative; sum of the
  // probability measures over all token constants is 1.
  double total = 0.0;
  for (cp::ConstantId id = 0; id < extraction.net.arena().constant_count();
       ++id) {
    total += cn::derivative_probability_by_constant(extraction.net, space, pi,
                                                    id);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}
