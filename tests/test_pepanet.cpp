// Unit and integration tests for PEPA nets: structure, firing semantics
// (paper Definitions 2-6), marking-graph derivation, the textual parser,
// and net-level measures.  The running example is the paper's instant-
// message net (Section 2.2).
#include <gtest/gtest.h>

#include "choreographer/extract_activity.hpp"
#include "choreographer/paper_models.hpp"
#include "ctmc/steady_state.hpp"
#include "pepanet/net.hpp"
#include "pepanet/net_parser.hpp"
#include "pepanet/net_printer.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "util/error.hpp"

namespace cp = choreo::pepa;
namespace cn = choreo::pepanet;
namespace cc = choreo::ctmc;
namespace cu = choreo::util;

namespace {

/// The paper's instant-message example: a message written at place p1 is
/// transmitted to place p2 where a FileReader reads it.
const char* kInstantMessageNet = R"(
  r_t = 0.7;
  InstantMessage = (write, 1.2).Written;
  Written        = (transmit, r_t).File;
  File           = (openread, 2.0).InStream;
  InStream       = (read, 1.8).InStream + (close, 3.0).Done;
  Done           = (reset, 5.0).InstantMessage;
  FileReader     = (openread, infty).(read, infty).(close, infty).FileReader;

  @token InstantMessage;
  @place p1 { cell InstantMessage = InstantMessage; }
  @place p2 { cell InstantMessage; static FileReader; }
  @transition transmit (rate infty) from p1 to p2;
  @transition reset (rate infty) from p2 to p1;
)";

cn::ParsedNet parse_instant_message() { return cn::parse_net(kInstantMessageNet); }

std::vector<double> solve(const cn::NetStateSpace& space) {
  return cc::steady_state(space.generator()).distribution;
}

}  // namespace

TEST(Net, BuilderAndValidation) {
  auto parsed = parse_instant_message();
  cn::PepaNet& net = parsed.net;
  EXPECT_EQ(net.token_type_count(), 1u);
  EXPECT_EQ(net.place_count(), 2u);
  EXPECT_EQ(net.transition_count(), 2u);
  EXPECT_TRUE(net.find_place("p1").has_value());
  EXPECT_TRUE(net.find_token_type("InstantMessage").has_value());
  EXPECT_FALSE(net.find_place("nope").has_value());
  const auto transmit = net.arena().find_action("transmit");
  ASSERT_TRUE(transmit.has_value());
  EXPECT_TRUE(net.is_firing_type(*transmit));
  EXPECT_FALSE(net.is_firing_type(*net.arena().find_action("read")));
  net.validate();
}

TEST(Net, SharedAlphabetCooperation) {
  auto parsed = parse_instant_message();
  const cn::Place& p2 = parsed.net.place(*parsed.net.find_place("p2"));
  ASSERT_EQ(p2.coop_sets.size(), 1u);
  // Cell type alphabet (minus firing types) intersected with FileReader's:
  // openread, read, close.
  std::vector<std::string> names;
  for (auto action : p2.coop_sets[0]) {
    names.push_back(parsed.net.arena().action_name(action));
  }
  EXPECT_EQ(names, (std::vector<std::string>{"openread", "read", "close"}));
}

TEST(Net, InitialMarking) {
  auto parsed = parse_instant_message();
  const auto marking = parsed.net.initial_marking();
  ASSERT_EQ(marking.size(), 3u);  // p1 cell, p2 cell, p2 static
  EXPECT_NE(marking[0], cn::kVacant);
  EXPECT_EQ(marking[1], cn::kVacant);
  EXPECT_NE(marking[2], cn::kVacant);
}

TEST(Net, UnbalancedTransitionRejected) {
  cn::PepaNet net;
  const auto a = net.arena().action("go");
  const auto body = net.arena().prefix(a, cp::Rate::active(1.0), net.arena().stop());
  const auto c = net.arena().declare("T");
  net.arena().define(c, body);
  const auto type = net.add_token_type("T", net.arena().constant(c));
  const auto p1 = net.add_place("p1");
  net.add_cell(p1, type, net.arena().constant(c));
  const auto p2 = net.add_place("p2");
  net.add_cell(p2, type);
  const auto p3 = net.add_place("p3");
  net.add_cell(p3, type);
  net.add_transition("go", cp::Rate::active(1.0), {p1}, {p2, p3});
  EXPECT_THROW(net.validate(), cu::ModelError);
}

TEST(Net, PlaceWithoutCellRejected) {
  cn::PepaNet net;
  const auto c = net.arena().declare("S");
  net.arena().define(c, net.arena().stop());
  const auto p = net.add_place("p");
  net.add_static(p, net.arena().constant(c));
  EXPECT_THROW(net.validate(), cu::ModelError);
}

TEST(NetSemantics, LocalMovesOnlyInsideOnePlace) {
  auto parsed = parse_instant_message();
  cn::NetSemantics semantics(parsed.net);
  const auto marking = parsed.net.initial_marking();
  const auto moves = semantics.moves(marking);
  // Initially: the message can 'write' locally at p1; transmit is not yet
  // enabled (the token is InstantMessage, whose first step is write).
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].kind, cn::NetMove::Kind::kLocal);
  EXPECT_EQ(parsed.net.arena().action_name(moves[0].action), "write");
  EXPECT_DOUBLE_EQ(moves[0].rate.value(), 1.2);
}

TEST(NetSemantics, FiringMovesTokenAndEvolvesIt) {
  auto parsed = parse_instant_message();
  cn::NetSemantics semantics(parsed.net);
  auto marking = parsed.net.initial_marking();
  // Step 1: local write.
  marking = semantics.moves(marking)[0].target;
  // Step 2: the transmit firing must now be the only move.
  const auto moves = semantics.moves(marking);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].kind, cn::NetMove::Kind::kFiring);
  EXPECT_EQ(parsed.net.arena().action_name(moves[0].action), "transmit");
  // Label rate is passive, so the token's rate r_t = 0.7 drives the firing.
  EXPECT_DOUBLE_EQ(moves[0].rate.value(), 0.7);
  const auto& target = moves[0].target;
  EXPECT_EQ(target[0], cn::kVacant);  // source cell vacated
  EXPECT_NE(target[1], cn::kVacant);  // token arrived at p2, evolved to File
  const auto file = parsed.net.arena().constant("File");
  EXPECT_EQ(target[1], file);
}

TEST(NetSemantics, NoConcessionWithoutVacantCell) {
  // Two tokens, one vacant cell at the destination: after one transmits,
  // the second has no output until the first token's cell frees up (it
  // never does in this net), so only local moves remain.
  const char* source = R"(
    Msg  = (transmit, 1.0).Idle;
    Idle = (spin, 1.0).Idle;
    @token Msg;
    @place a { cell Msg = Msg; cell Msg = Msg; }
    @place b { cell Msg; }
    @transition transmit (rate infty) from a to b;
  )";
  auto parsed = cn::parse_net(source);
  cn::NetSemantics semantics(parsed.net);
  auto marking = parsed.net.initial_marking();
  auto moves = semantics.moves(marking);
  // Both tokens can transmit (two enablings, one output cell each).
  std::size_t firings = 0;
  for (const auto& move : moves) {
    firings += move.kind == cn::NetMove::Kind::kFiring;
  }
  EXPECT_EQ(firings, 2u);
  // Take one; afterwards the remaining token has concession for nothing.
  const auto after = moves[0].kind == cn::NetMove::Kind::kFiring
                         ? moves[0].target
                         : moves[1].target;
  EXPECT_FALSE(semantics.has_concession(after, 0));
}

TEST(NetSemantics, RacingTokensShareBoundedCapacity) {
  // The transition label is the bottleneck (rate 1); two eligible tokens
  // race for it, so the total firing rate must be 1, split equally.
  const char* source = R"(
    Msg  = (hop, 4.0).Idle;
    Idle = (spin, 1.0).Idle;
    @token Msg;
    @place a { cell Msg = Msg; cell Msg = Msg; }
    @place b { cell Msg; cell Msg; }
    @transition hop (rate 1.0) from a to b;
  )";
  auto parsed = cn::parse_net(source);
  cn::NetSemantics semantics(parsed.net);
  const auto moves = semantics.moves(parsed.net.initial_marking());
  double firing_total = 0.0;
  std::size_t firing_count = 0;
  for (const auto& move : moves) {
    if (move.kind == cn::NetMove::Kind::kFiring) {
      firing_total += move.rate.value();
      ++firing_count;
    }
  }
  // 2 enablings x 2 vacant-cell variants each.
  EXPECT_EQ(firing_count, 4u);
  EXPECT_NEAR(firing_total, 1.0, 1e-12);
}

TEST(NetSemantics, PriorityBlocksLowerFirings) {
  const char* source = R"(
    Msg = (fast, 1.0).Idle + (slow, 1.0).Idle;
    Idle = (spin, 1.0).Idle;
    @token Msg;
    @place a { cell Msg = Msg; }
    @place b { cell Msg; }
    @place c { cell Msg; }
    @transition fast (rate 1.0, priority 2) from a to b;
    @transition slow (rate 1.0, priority 1) from a to c;
  )";
  auto parsed = cn::parse_net(source);
  cn::NetSemantics semantics(parsed.net);
  const auto moves = semantics.moves(parsed.net.initial_marking());
  for (const auto& move : moves) {
    if (move.kind == cn::NetMove::Kind::kFiring) {
      EXPECT_EQ(parsed.net.arena().action_name(move.action), "fast");
    }
  }
  // Both transitions have concession; priority picks 'fast'.
  EXPECT_TRUE(semantics.has_concession(parsed.net.initial_marking(), 0));
  EXPECT_TRUE(semantics.has_concession(parsed.net.initial_marking(), 1));
}

TEST(NetSemantics, LowerPriorityFiresWhenHigherHasNoConcession) {
  const char* source = R"(
    Msg = (fast, 1.0).Idle + (slow, 1.0).Idle;
    Idle = (spin, 1.0).Idle;
    @token Msg;
    @place a { cell Msg = Msg; }
    @place b { cell Msg = Idle; }   // full: no vacant cell for 'fast'
    @place c { cell Msg; }
    @transition fast (rate 1.0, priority 2) from a to b;
    @transition slow (rate 1.0, priority 1) from a to c;
  )";
  auto parsed = cn::parse_net(source);
  cn::NetSemantics semantics(parsed.net);
  bool saw_slow_firing = false;
  for (const auto& move : semantics.moves(parsed.net.initial_marking())) {
    if (move.kind == cn::NetMove::Kind::kFiring) {
      EXPECT_EQ(parsed.net.arena().action_name(move.action), "slow");
      saw_slow_firing = true;
    }
  }
  EXPECT_TRUE(saw_slow_firing);
}

TEST(NetStateSpace, InstantMessageLifecycle) {
  auto parsed = parse_instant_message();
  cn::NetSemantics semantics(parsed.net);
  const auto space = cn::NetStateSpace::derive(semantics);
  // Lifecycle: write at p1, transmit firing to p2, openread/read/close in
  // cooperation with the static FileReader (which steps through its own
  // three states alongside the token), then the reset firing returns the
  // message to p1.  The cycle is a simple loop of six markings.
  EXPECT_EQ(space.marking_count(), 6u);
  EXPECT_TRUE(space.deadlock_markings().empty());
  for (const auto& t : space.transitions()) {
    EXPECT_GT(t.rate, 0.0);
  }
}

TEST(NetStateSpace, RoundTripNetReachesSteadyState) {
  // A message shuttles between two places forever; CTMC throughputs of the
  // two firings must agree.
  const char* source = R"(
    Out  = (send, 2.0).Back;
    Back = (ret, 3.0).Out;
    @token Out;
    @place a { cell Out = Out; }
    @place b { cell Out; }
    @transition send (rate infty) from a to b;
    @transition ret (rate infty) from b to a;
  )";
  auto parsed = cn::parse_net(source);
  cn::NetSemantics semantics(parsed.net);
  const auto space = cn::NetStateSpace::derive(semantics);
  EXPECT_EQ(space.marking_count(), 2u);
  const auto pi = solve(space);
  const auto send = *parsed.net.arena().find_action("send");
  const auto ret = *parsed.net.arena().find_action("ret");
  const double send_tp = cn::action_throughput(space, pi, send);
  const double ret_tp = cn::action_throughput(space, pi, ret);
  EXPECT_NEAR(send_tp, ret_tp, 1e-10);
  EXPECT_NEAR(send_tp, 1.0 / (1.0 / 2.0 + 1.0 / 3.0), 1e-10);

  // Occupancy: P[token at a] = (1/2) / (1/2 + 1/3).
  const auto a = *parsed.net.find_place("a");
  const auto b = *parsed.net.find_place("b");
  EXPECT_NEAR(cn::occupancy_probability(parsed.net, space, pi, a),
              (1.0 / 2.0) / (1.0 / 2.0 + 1.0 / 3.0), 1e-10);
  EXPECT_NEAR(cn::mean_tokens_at(parsed.net, space, pi, a) +
                  cn::mean_tokens_at(parsed.net, space, pi, b),
              1.0, 1e-10);
}

TEST(NetStateSpace, StaticComponentsConstrainTokens) {
  auto parsed = parse_instant_message();
  cn::NetSemantics semantics(parsed.net);
  const auto space = cn::NetStateSpace::derive(semantics);
  const auto pi = solve(space);
  // The reader's passive openread synchronises with the arriving File
  // token; read throughput is positive only because the static FileReader
  // cooperates at p2.
  const auto read = *parsed.net.arena().find_action("read");
  EXPECT_GT(cn::action_throughput(space, pi, read), 0.0);
}

TEST(NetStateSpace, DerivativeProbabilitySumsToTokenPresence) {
  auto parsed = parse_instant_message();
  cn::NetSemantics semantics(parsed.net);
  const auto space = cn::NetStateSpace::derive(semantics);
  const auto pi = solve(space);
  // The token is always somewhere in exactly one derivative.
  double total = 0.0;
  for (const char* name :
       {"InstantMessage", "Written", "File", "InStream", "Done"}) {
    total += cn::derivative_probability(
        parsed.net, space, pi, parsed.net.arena().constant(name));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(NetParser, Printing) {
  auto parsed = parse_instant_message();
  const std::string text = cn::to_string(parsed.net);
  EXPECT_NE(text.find("@token InstantMessage"), std::string::npos);
  EXPECT_NE(text.find("@place p1"), std::string::npos);
  EXPECT_NE(text.find("@transition transmit"), std::string::npos);
  const std::string marking =
      cn::marking_to_string(parsed.net, parsed.net.initial_marking());
  EXPECT_NE(marking.find("p1[InstantMessage]"), std::string::npos);
  EXPECT_NE(marking.find("_"), std::string::npos);
}

TEST(NetParser, Errors) {
  EXPECT_THROW(cn::parse_net("P = (a, 1.0).P;"), cu::ParseError);  // no net part
  EXPECT_THROW(cn::parse_net("P = (a,1.0).P; @token Unknown;"), cu::ParseError);
  EXPECT_THROW(cn::parse_net(R"(
    P = (a, 1.0).P;
    @token P;
    @place x { cell Nope; }
  )"),
               cu::ParseError);
  EXPECT_THROW(cn::parse_net(R"(
    P = (a, 1.0).P;
    @token P;
    @place x { cell P = P; }
    @transition a (rate 1.0) from x to nowhere;
  )"),
               cu::ParseError);
}

TEST(NetParser, ParameterRatesAndPriorities) {
  const char* source = R"(
    speed = 4.5;
    M = (go, speed).M;
    @token M;
    @place a { cell M = M; }
    @place b { cell M; }
    @transition go (rate speed, priority 3) from a to b;
  )";
  auto parsed = cn::parse_net(source);
  EXPECT_DOUBLE_EQ(parsed.net.transition(0).rate.value(), 4.5);
  EXPECT_EQ(parsed.net.transition(0).priority, 3u);
  ASSERT_EQ(parsed.parameters.size(), 1u);
  EXPECT_EQ(parsed.parameters[0].first, "speed");
}

TEST(NetSemantics, SynchronisedMoveOfTwoTokenTypes) {
  // A two-input, two-output firing: the transfer relocates one Person and
  // one Bag together; the bijection must respect the token types (the
  // Person lands in the Person cell, the Bag in the Bag cell).
  const char* source = R"(
    Person = (board, 1.0).Seated;
    Seated = (rest, 1.0).Seated;
    Bag    = (board, infty).Stowed;
    Stowed = (sit, 1.0).Stowed;
    @token Person;
    @token Bag;
    @place gate_p  { cell Person = Person; }
    @place gate_b  { cell Bag = Bag; }
    @place cabin_p { cell Person; }
    @place cabin_b { cell Bag; }
    @transition board (rate 2.0) from gate_p, gate_b to cabin_p, cabin_b;
  )";
  auto parsed = cn::parse_net(source);
  cn::NetSemantics semantics(parsed.net);
  const auto moves = semantics.moves(parsed.net.initial_marking());
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].kind, cn::NetMove::Kind::kFiring);
  // Label 2.0 against active Person 1.0 and passive Bag: min is 1.0.
  EXPECT_DOUBLE_EQ(moves[0].rate.value(), 1.0);
  const auto& target = moves[0].target;
  const auto cabin_p = *parsed.net.find_place("cabin_p");
  const auto cabin_b = *parsed.net.find_place("cabin_b");
  EXPECT_EQ(target[parsed.net.slot_offset(cabin_p, 0)],
            parsed.net.arena().constant("Seated"));
  EXPECT_EQ(target[parsed.net.slot_offset(cabin_b, 0)],
            parsed.net.arena().constant("Stowed"));
  EXPECT_EQ(target[0], cn::kVacant);
  EXPECT_EQ(target[1], cn::kVacant);
}

TEST(NetSemantics, SynchronisedMoveBlocksWhenOnePartnerMissing) {
  const char* source = R"(
    Person = (board, 1.0).Seated;
    Seated = (rest, 1.0).Seated;
    Bag    = (board, infty).Stowed;
    Stowed = (sit, 1.0).Stowed;
    @token Person;
    @token Bag;
    @place gate_p  { cell Person = Person; }
    @place gate_b  { cell Bag; }   // no bag waiting
    @place cabin_p { cell Person; }
    @place cabin_b { cell Bag; }
    @transition board (rate 2.0) from gate_p, gate_b to cabin_p, cabin_b;
  )";
  auto parsed = cn::parse_net(source);
  cn::NetSemantics semantics(parsed.net);
  EXPECT_FALSE(semantics.has_concession(parsed.net.initial_marking(), 0));
  EXPECT_TRUE(semantics.moves(parsed.net.initial_marking()).empty());
}

TEST(NetSemantics, TypeMismatchedVacancyGivesNoOutput) {
  // The only vacant cell at the destination is of the wrong type: no
  // type-preserving bijection exists (Definition 4), so no concession.
  const char* source = R"(
    Person = (walk, 1.0).Person;
    Bag    = (walk, 1.0).Bag;
    @token Person;
    @token Bag;
    @place here  { cell Person = Person; }
    @place there { cell Bag; }
    @transition walk (rate 1.0) from here to there;
  )";
  auto parsed = cn::parse_net(source);
  cn::NetSemantics semantics(parsed.net);
  EXPECT_FALSE(semantics.has_concession(parsed.net.initial_marking(), 0));
}

TEST(NetStateSpace, TwoTokenRendezvousCycle) {
  // Person and Bag shuttle back and forth together; the marking graph is a
  // joint cycle and both firings share one throughput.
  const char* source = R"(
    Person = (board, 2.0).Seated;
    Seated = (alight, 1.5).Person;
    Bag    = (board, infty).Stowed;
    Stowed = (alight, infty).Bag;
    @token Person;
    @token Bag;
    @place gate_p  { cell Person = Person; }
    @place gate_b  { cell Bag = Bag; }
    @place cabin_p { cell Person; }
    @place cabin_b { cell Bag; }
    @transition board  (rate infty) from gate_p, gate_b to cabin_p, cabin_b;
    @transition alight (rate infty) from cabin_p, cabin_b to gate_p, gate_b;
  )";
  auto parsed = cn::parse_net(source);
  cn::NetSemantics semantics(parsed.net);
  const auto space = cn::NetStateSpace::derive(semantics);
  EXPECT_EQ(space.marking_count(), 2u);
  EXPECT_TRUE(space.deadlock_markings().empty());
  const auto pi = solve(space);
  const double board_tp = cn::action_throughput(
      space, pi, *parsed.net.arena().find_action("board"));
  const double alight_tp = cn::action_throughput(
      space, pi, *parsed.net.arena().find_action("alight"));
  EXPECT_NEAR(board_tp, alight_tp, 1e-12);
  EXPECT_NEAR(board_tp, 1.0 / (1.0 / 2.0 + 1.0 / 1.5), 1e-12);
}

TEST(NetParser, ExplicitSyncSetsOverrideDefault) {
  // By default the token and the monitor would synchronise on 'work'
  // (shared alphabet); an explicit empty sync set decouples them.
  const char* coupled = R"(
    Job = (work, 2.0).Job;
    Monitor = (work, 3.0).Monitor;
    @token Job;
    @place lab { cell Job = Job; static Monitor; }
    @place aux { cell Job; }
    @transition shift (rate 1.0) from lab to aux;
    @transition back (rate 1.0) from aux to lab;
  )";
  const char* decoupled = R"(
    Job = (work, 2.0).Job;
    Monitor = (work, 3.0).Monitor;
    @token Job;
    @place lab { cell Job = Job; static Monitor; sync <>; }
    @place aux { cell Job; }
    @transition shift (rate 1.0) from lab to aux;
    @transition back (rate 1.0) from aux to lab;
  )";
  // 'shift'/'back' need token activities: Job has none -> the transitions
  // never fire; only local 'work' moves exist, which is what we compare.
  auto solve_work = [](const char* source) {
    auto parsed = cn::parse_net(source);
    cn::NetSemantics semantics(parsed.net);
    const auto moves = semantics.moves(parsed.net.initial_marking());
    double total = 0.0;
    for (const auto& move : moves) total += move.rate.value();
    return total;
  };
  // Coupled: one synchronised 'work' at min(2,3) = 2.  Decoupled: the token
  // works at 2 and the monitor at 3 independently = 5.
  EXPECT_DOUBLE_EQ(solve_work(coupled), 2.0);
  EXPECT_DOUBLE_EQ(solve_work(decoupled), 5.0);
}

TEST(NetParser, WrongSyncArityRejected) {
  const char* source = R"(
    Job = (work, 2.0).Job;
    @token Job;
    @place lab { cell Job = Job; sync <>; sync <>; }
    @transition shift (rate 1.0) from lab to lab;
  )";
  EXPECT_THROW(cn::parse_net(source), cu::Error);
}

TEST(NetPrinter, SourceRoundTripPreservesSemantics) {
  // extract -> emit -> parse must yield a net with the same marking graph
  // size and identical per-action throughputs.
  for (const char* which : {"instant_message", "pda"}) {
    cn::ParsedNet original;
    if (std::string(which) == "instant_message") {
      original = parse_instant_message();
    } else {
      auto model = choreo::chor::pda_handover_model();
      auto extraction =
          choreo::chor::extract_activity_graph(model.activity_graphs()[0]);
      original.net = std::move(extraction.net);
    }
    const std::string source = cn::to_source(original.net);
    auto reparsed = cn::parse_net(source);

    cn::NetSemantics semantics_a(original.net);
    cn::NetSemantics semantics_b(reparsed.net);
    const auto space_a = cn::NetStateSpace::derive(semantics_a);
    const auto space_b = cn::NetStateSpace::derive(semantics_b);
    EXPECT_EQ(space_a.marking_count(), space_b.marking_count()) << which;

    const auto pi_a = solve(space_a);
    const auto pi_b = solve(space_b);
    for (cp::ActionId action = 1; action < original.net.arena().action_count();
         ++action) {
      const std::string& name = original.net.arena().action_name(action);
      const auto action_b = reparsed.net.arena().find_action(name);
      ASSERT_TRUE(action_b.has_value()) << name;
      EXPECT_NEAR(cn::action_throughput(space_a, pi_a, action),
                  cn::action_throughput(space_b, pi_b, *action_b), 1e-10)
          << which << ":" << name;
    }
  }
}

TEST(NetSemantics, CompoundTokenMovesAsAUnit) {
  // PEPA-net tokens are arbitrary PEPA terms: here a token that is itself a
  // cooperation of two subcomponents.  It evolves internally inside a place
  // and fires as one unit.
  cn::PepaNet net;
  auto& arena = net.arena();
  const auto work = arena.action("work");
  const auto hop = arena.action("hop");
  const auto left = arena.declare("L");
  const auto right = arena.declare("R");
  arena.define(left, arena.prefix(work, cp::Rate::active(2.0),
                                  arena.prefix(hop, cp::Rate::active(1.0),
                                               arena.constant(left))));
  arena.define(right, arena.prefix(work, cp::Rate::passive(1.0),
                                   arena.constant(right)));
  const auto pair =
      arena.cooperation(arena.constant(left), {work}, arena.constant(right));
  const auto type = net.add_token_type("Pair", pair);
  const auto a = net.add_place("a");
  net.add_cell(a, type, pair);
  const auto b = net.add_place("b");
  net.add_cell(b, type);
  net.add_transition("hop", cp::Rate::passive(1.0), {a}, {b});
  net.add_transition("hop", cp::Rate::passive(1.0), {b}, {a});
  net.use_shared_alphabet_cooperation(a);
  net.use_shared_alphabet_cooperation(b);

  cn::NetSemantics semantics(net);
  const auto space = cn::NetStateSpace::derive(semantics);
  EXPECT_TRUE(space.deadlock_markings().empty());
  // The compound evolves: (work sync) at 2.0, then the left half's hop
  // fires the whole pair to the other place; 2 internal states x 2 places.
  EXPECT_EQ(space.marking_count(), 4u);
  const auto pi = solve(space);
  EXPECT_NEAR(cn::action_throughput(space, pi, work),
              cn::action_throughput(space, pi, hop), 1e-10);
}

TEST(NetSemantics, LocalAndFiringMovesRace) {
  // A token that can either keep working locally or hop away: both moves
  // coexist in the marking graph and race in the CTMC.
  const char* cyclic = R"(
    Busy  = (work, 3.0).Busy + (hop, 1.0).Away;
    Away  = (hop_back, 2.0).Busy;
    @token Busy;
    @place a { cell Busy = Busy; }
    @place b { cell Busy; }
    @transition hop (rate infty) from a to b;
    @transition hop_back (rate infty) from b to a;
  )";
  auto parsed = cn::parse_net(cyclic);
  cn::NetSemantics semantics(parsed.net);
  const auto moves = semantics.moves(parsed.net.initial_marking());
  ASSERT_EQ(moves.size(), 2u);
  bool saw_local = false, saw_firing = false;
  for (const auto& move : moves) {
    saw_local |= move.kind == cn::NetMove::Kind::kLocal;
    saw_firing |= move.kind == cn::NetMove::Kind::kFiring;
  }
  EXPECT_TRUE(saw_local);
  EXPECT_TRUE(saw_firing);

  const auto space = cn::NetStateSpace::derive(semantics);
  const auto pi = solve(space);
  const auto work = *parsed.net.arena().find_action("work");
  const auto hop = *parsed.net.arena().find_action("hop");
  // Race ratio at place a: work at 3.0 vs hop at 1.0.
  EXPECT_NEAR(cn::action_throughput(space, pi, work) /
                  cn::action_throughput(space, pi, hop),
              3.0, 1e-9);
}

TEST(NetSemantics, PriorityDoesNotBlockLocalMoves) {
  const char* source = R"(
    Busy  = (work, 3.0).Busy + (hop, 1.0).Away;
    Away  = (hop_back, 2.0).Busy;
    @token Busy;
    @place a { cell Busy = Busy; }
    @place b { cell Busy; }
    @transition hop (rate infty, priority 7) from a to b;
    @transition hop_back (rate infty) from b to a;
  )";
  auto parsed = cn::parse_net(source);
  cn::NetSemantics semantics(parsed.net);
  const auto moves = semantics.moves(parsed.net.initial_marking());
  bool saw_local = false;
  for (const auto& move : moves) {
    saw_local |= move.kind == cn::NetMove::Kind::kLocal;
  }
  EXPECT_TRUE(saw_local);  // priorities gate firings only (Definition 5)
}

TEST(NetStateSpace, DeriveFromCustomMarking) {
  auto parsed = parse_instant_message();
  cn::NetSemantics semantics(parsed.net);
  // Start with the message already transmitted: vacate p1, put File at p2.
  cn::Marking marking = parsed.net.initial_marking();
  marking[0] = cn::kVacant;
  marking[1] = parsed.net.arena().constant("File");
  const auto space = cn::NetStateSpace::derive_from(semantics, marking);
  // Same recurrent cycle as from M0, minus nothing: all 6 markings reachable.
  EXPECT_EQ(space.marking_count(), 6u);
  EXPECT_EQ(space.marking(0), marking);
}

TEST(NetStateSpace, StaticStateSurvivesTokenDeparture) {
  // The static reader advances while the token is resident; when the token
  // fires away mid-protocol the reader must keep its state at the place.
  const char* source = R"(
    Msg   = (ping, 1.0).Gone;
    Gone  = (leave, 1.0).Back;
    Back  = (ret, 1.0).Msg;
    Clock = (ping, infty).Clock2;
    Clock2 = (tick, 4.0).Clock;
    @token Msg;
    @place a { cell Msg = Msg; static Clock; }
    @place b { cell Msg; }
    @transition leave (rate infty) from a to b;
    @transition ret (rate infty) from b to a;
  )";
  auto parsed = cn::parse_net(source);
  cn::NetSemantics semantics(parsed.net);
  auto marking = parsed.net.initial_marking();
  // ping synchronises token and clock; the clock advances to Clock2.
  marking = semantics.moves(marking)[0].target;
  EXPECT_EQ(marking[1], parsed.net.arena().constant("Clock2"));
  // The token leaves; the clock must still be in Clock2 at place a.
  const auto moves = semantics.moves(marking);
  const cn::NetMove* leave = nullptr;
  for (const auto& move : moves) {
    if (move.kind == cn::NetMove::Kind::kFiring) leave = &move;
  }
  ASSERT_NE(leave, nullptr);
  EXPECT_EQ(leave->target[0], cn::kVacant);
  EXPECT_EQ(leave->target[1], parsed.net.arena().constant("Clock2"));
}

TEST(Net, CoopSetWithFiringTypeRejected) {
  cn::PepaNet net;
  const auto hop = net.arena().action("hop");
  const auto c = net.arena().declare("T");
  net.arena().define(c, net.arena().prefix(hop, cp::Rate::active(1.0),
                                           net.arena().constant(c)));
  const auto type = net.add_token_type("T", net.arena().constant(c));
  const auto p = net.add_place("p");
  net.add_cell(p, type, net.arena().constant(c));
  net.add_cell(p, type);
  const auto q = net.add_place("q");
  net.add_cell(q, type);
  net.add_transition("hop", cp::Rate::active(1.0), {p}, {q});
  net.set_coop_sets(p, {{hop}});  // firing type in a local cooperation set
  EXPECT_THROW(net.validate(), cu::ModelError);
}
