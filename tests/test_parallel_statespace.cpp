// Determinism of parallel state-space exploration.
//
// The level-synchronous parallel BFS must reproduce the sequential
// exploration exactly: state numbering, printed state terms, transition
// lists (order, actions, bit-exact rates), steady-state measures, annotated
// XMI bytes, and error texts are required to be identical at every lane
// count.  Raw ProcessIds are NOT compared — interning order is racy under
// parallel expansion, so ids differ run to run while the terms they denote
// (and everything derived from them) do not.
//
// The *Concurrent* tests are also the ThreadSanitizer workload: many lanes
// hammer one shared arena + semantics, and many service jobs derive at
// once (run with CHOREO_SANITIZE=thread; see scripts/reproduce.sh).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "choreographer/extract_activity.hpp"
#include "choreographer/extract_statechart.hpp"
#include "choreographer/paper_models.hpp"
#include "choreographer/pipeline.hpp"
#include "ctmc/steady_state.hpp"
#include "pepa/printer.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "pepanet/net_printer.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "service/scheduler.hpp"
#include "uml/xmi.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "xml/write.hpp"

namespace {

using namespace choreo;

/// A lane-count-independent fingerprint of a PEPA state space: printed
/// state terms in index order plus every transition with its action name
/// and exact rate.
std::vector<std::string> fingerprint(const pepa::ProcessArena& arena,
                                     const pepa::StateSpace& space) {
  std::vector<std::string> lines;
  lines.reserve(space.state_count() + space.transitions().size());
  for (std::size_t s = 0; s < space.state_count(); ++s) {
    lines.push_back(pepa::to_string(arena, space.state_term(s)));
  }
  for (const pepa::StateTransition& t : space.transitions()) {
    lines.push_back(std::to_string(t.source) + "-" +
                    arena.action_name(t.action) + "@" +
                    std::to_string(t.rate) + "->" + std::to_string(t.target));
  }
  return lines;
}

/// Same for a marking graph, including the firing/local distinction.
std::vector<std::string> fingerprint(const pepanet::PepaNet& net,
                                     const pepanet::NetStateSpace& space) {
  std::vector<std::string> lines;
  lines.reserve(space.marking_count() + space.transitions().size());
  for (std::size_t m = 0; m < space.marking_count(); ++m) {
    lines.push_back(pepanet::marking_to_string(net, space.marking(m)));
  }
  for (const pepanet::MarkingTransition& t : space.transitions()) {
    lines.push_back(
        std::to_string(t.source) + "-" + net.arena().action_name(t.action) +
        "@" + std::to_string(t.rate) + "->" + std::to_string(t.target) +
        (t.is_firing ? " firing:" + std::to_string(t.net_transition)
                     : " local:" + std::to_string(t.place)));
  }
  return lines;
}

pepa::StateSpace derive_tomcat(std::size_t threads, util::ThreadPool* pool,
                               chor::StatechartExtraction& extraction) {
  chor::TomcatParams params;
  params.clients = 3;
  const uml::Model model = chor::tomcat_model(false, params);
  extraction = chor::extract_state_machines(model);
  pepa::Semantics semantics(extraction.model.arena());
  pepa::DeriveOptions options;
  options.threads = threads;
  options.pool = pool;
  return pepa::StateSpace::derive(semantics, extraction.model.system(),
                                  options);
}

TEST(ParallelStateSpace, TomcatIdenticalAcrossLaneCounts) {
  chor::StatechartExtraction sequential_extraction;
  const pepa::StateSpace sequential =
      derive_tomcat(1, nullptr, sequential_extraction);
  const std::vector<std::string> expected =
      fingerprint(sequential_extraction.model.arena(), sequential);
  ASSERT_GT(sequential.state_count(), 1u);
  EXPECT_EQ(sequential.stats().dedup_misses, sequential.state_count());

  util::ThreadPool pool(4);  // real workers even on a single-core host
  for (const std::size_t threads : {2u, 4u, 8u}) {
    chor::StatechartExtraction extraction;
    const pepa::StateSpace space = derive_tomcat(threads, &pool, extraction);
    EXPECT_EQ(fingerprint(extraction.model.arena(), space), expected)
        << "lane count " << threads;
    EXPECT_EQ(space.stats().dedup_misses, sequential.stats().dedup_misses);
    EXPECT_EQ(space.stats().dedup_hits, sequential.stats().dedup_hits);
    EXPECT_EQ(space.stats().levels, sequential.stats().levels);
    EXPECT_EQ(space.stats().peak_frontier, sequential.stats().peak_frontier);
  }
}

pepanet::NetStateSpace derive_pda(std::size_t threads, util::ThreadPool* pool,
                                  chor::ActivityExtraction& extraction) {
  chor::PdaParams params;
  params.transmitters = 6;
  uml::Model model = chor::pda_handover_model(params);
  extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
  pepanet::NetSemantics semantics(extraction.net);
  pepanet::NetDeriveOptions options;
  options.threads = threads;
  options.pool = pool;
  return pepanet::NetStateSpace::derive(semantics, options);
}

TEST(ParallelStateSpace, PdaHandoverMarkingGraphIdentical) {
  chor::ActivityExtraction sequential_extraction;
  const pepanet::NetStateSpace sequential =
      derive_pda(1, nullptr, sequential_extraction);
  const std::vector<std::string> expected =
      fingerprint(sequential_extraction.net, sequential);
  ASSERT_GT(sequential.marking_count(), 1u);

  // Steady state from the sequential graph, for bit-exact comparison.
  const auto sequential_solution = ctmc::steady_state(sequential.generator());

  util::ThreadPool pool(4);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    chor::ActivityExtraction extraction;
    const pepanet::NetStateSpace space = derive_pda(threads, &pool, extraction);
    EXPECT_EQ(fingerprint(extraction.net, space), expected)
        << "lane count " << threads;

    // Identical transitions in identical order must give a bit-identical
    // generator and therefore a bit-identical solver trajectory.
    const auto solution = ctmc::steady_state(space.generator());
    ASSERT_EQ(solution.distribution.size(),
              sequential_solution.distribution.size());
    for (std::size_t m = 0; m < solution.distribution.size(); ++m) {
      EXPECT_EQ(solution.distribution[m], sequential_solution.distribution[m]);
    }
  }
}

TEST(ParallelStateSpace, AnnotatedXmiBytesIdentical) {
  const xml::Document project = uml::to_xmi(chor::pda_handover_model());

  chor::AnalysisOptions sequential_options;
  sequential_options.derive_threads = 1;
  const xml::Document sequential =
      chor::analyse_project(project, sequential_options);
  const std::string expected = xml::to_string(sequential);

  util::ThreadPool pool(4);
  for (const std::size_t threads : {2u, 8u}) {
    chor::AnalysisOptions options;
    options.derive_threads = threads;
    options.derive_pool = &pool;
    const xml::Document annotated = chor::analyse_project(project, options);
    EXPECT_EQ(xml::to_string(annotated), expected)
        << "lane count " << threads;
  }
}

TEST(ParallelStateSpace, MaxStatesErrorTextIdenticalAcrossLaneCounts) {
  auto derive_with = [](std::size_t threads,
                        util::ThreadPool* pool) -> std::string {
    chor::TomcatParams params;
    params.clients = 3;
    const uml::Model model = chor::tomcat_model(false, params);
    auto extraction = chor::extract_state_machines(model);
    pepa::Semantics semantics(extraction.model.arena());
    pepa::DeriveOptions options;
    options.max_states = 5;
    options.threads = threads;
    options.pool = pool;
    try {
      pepa::StateSpace::derive(semantics, extraction.model.system(), options);
    } catch (const util::ModelError& error) {
      return error.what();
    }
    return "";
  };
  const std::string expected = derive_with(1, nullptr);
  ASSERT_NE(expected.find("state-space explosion"), std::string::npos);
  util::ThreadPool pool(4);
  EXPECT_EQ(derive_with(2, &pool), expected);
  EXPECT_EQ(derive_with(8, &pool), expected);
}

// Many explorations of the same model against ONE shared arena + semantics:
// the interning stripes and memoisation caches are hit from every lane of
// every exploration at once.  All resulting spaces must agree.
TEST(ParallelStateSpace, ConcurrentDerivesOnSharedSemanticsAgree) {
  chor::TomcatParams params;
  params.clients = 2;
  const uml::Model model = chor::tomcat_model(false, params);
  auto extraction = chor::extract_state_machines(model);
  pepa::Semantics semantics(extraction.model.arena());

  util::ThreadPool pool(4);
  constexpr std::size_t kExplorers = 4;
  std::vector<std::vector<std::string>> results(kExplorers);
  std::vector<std::thread> explorers;
  explorers.reserve(kExplorers);
  for (std::size_t e = 0; e < kExplorers; ++e) {
    explorers.emplace_back([&, e] {
      pepa::DeriveOptions options;
      options.threads = 2;
      options.pool = &pool;
      const pepa::StateSpace space = pepa::StateSpace::derive(
          semantics, extraction.model.system(), options);
      results[e] = fingerprint(extraction.model.arena(), space);
    });
  }
  for (std::thread& explorer : explorers) explorer.join();
  for (std::size_t e = 1; e < kExplorers; ++e) {
    EXPECT_EQ(results[e], results[0]) << "explorer " << e;
  }
}

// Concurrent service jobs exercising the whole pipeline with parallel
// exploration lanes — scheduler workers, per-job derivations and the lane
// pool all overlap.  Every job of one model must produce the same bytes.
TEST(ParallelStateSpace, ConcurrentServiceJobsProduceIdenticalBytes) {
  const xml::Document project = uml::to_xmi(chor::pda_handover_model());

  service::Registry registry;
  service::SchedulerOptions options;
  options.workers = 3;
  options.derive_threads = 2;
  options.registry = &registry;
  service::Scheduler scheduler(options);

  constexpr std::size_t kJobs = 6;
  std::vector<service::JobHandle> handles;
  handles.reserve(kJobs);
  for (std::size_t j = 0; j < kJobs; ++j) {
    service::JobRequest request;
    request.name = "job-" + std::to_string(j);
    request.project = project;
    handles.push_back(scheduler.submit(request));
  }
  std::string expected;
  for (std::size_t j = 0; j < kJobs; ++j) {
    const service::JobResult result = handles[j].wait();
    ASSERT_EQ(result.status, service::JobStatus::kDone) << result.error;
    if (j == 0) {
      expected = result.annotated_xmi;
      ASSERT_FALSE(expected.empty());
    } else {
      EXPECT_EQ(result.annotated_xmi, expected) << "job " << j;
    }
  }

  // The exploration metrics the scheduler exports are populated.
  EXPECT_GT(registry.counter("choreo_explored_states_total", "").value(), 0u);
  EXPECT_GT(registry.gauge("choreo_explore_peak_frontier", "").value(), 0);
  EXPECT_GT(registry.histogram("choreo_stage_derive_seconds", "").count(), 0u);
  EXPECT_GT(
      registry.histogram("choreo_explore_states_per_second", "").count(), 0u);
}

}  // namespace
