// Property-based tests for PEPA nets: structural invariants that every
// reachable marking of every net must satisfy --
//   (1) token conservation: firings are balanced (Definition 1), so the
//       number of tokens of each type is constant across the marking graph;
//   (2) type safety: a cell of type T only ever holds derivatives reachable
//       from T's initial derivative (the bijections of Definition 4 are
//       type-preserving);
//   (3) statics never vanish: static slots are always occupied.
// Checked on the paper nets and on randomly generated ring nets.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <set>
#include <string>

#include "choreographer/extract_activity.hpp"
#include "choreographer/paper_models.hpp"
#include "pepanet/net_parser.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace cp = choreo::pepa;
namespace cn = choreo::pepanet;
namespace cu = choreo::util;
namespace chor = choreo::chor;

namespace {

/// All derivatives reachable from `initial` (through every action type,
/// firings included: tokens keep their type across moves).
std::set<cp::ProcessId> derivative_closure(cp::ProcessArena& arena,
                                           cp::ProcessId initial) {
  cp::Semantics semantics(arena);
  std::set<cp::ProcessId> closure{initial};
  std::deque<cp::ProcessId> frontier{initial};
  while (!frontier.empty()) {
    const cp::ProcessId term = frontier.front();
    frontier.pop_front();
    const std::vector<cp::Derivative> moves = semantics.derivatives(term);
    for (const cp::Derivative& d : moves) {
      if (closure.insert(d.target).second) frontier.push_back(d.target);
    }
  }
  return closure;
}

void check_invariants(cn::PepaNet& net) {
  cn::NetSemantics semantics(net);
  const auto space = cn::NetStateSpace::derive(semantics);
  ASSERT_GT(space.marking_count(), 0u);

  // Pre-compute the reachable-derivative closure per token type.
  std::vector<std::set<cp::ProcessId>> closures;
  for (cn::TokenTypeId type = 0; type < net.token_type_count(); ++type) {
    closures.push_back(
        derivative_closure(net.arena(), net.token_type(type).initial));
  }

  // Expected token census from M0.
  std::map<cn::TokenTypeId, std::size_t> initial_census;
  const cn::Marking m0 = net.initial_marking();
  for (cn::PlaceId p = 0; p < net.place_count(); ++p) {
    const cn::Place& place = net.place(p);
    for (std::size_t s = 0; s < place.slots.size(); ++s) {
      if (place.slots[s].kind == cn::Slot::Kind::kCell &&
          m0[net.slot_offset(p, s)] != cn::kVacant) {
        ++initial_census[place.slots[s].cell_type];
      }
    }
  }

  for (std::size_t m = 0; m < space.marking_count(); ++m) {
    const cn::Marking& marking = space.marking(m);
    std::map<cn::TokenTypeId, std::size_t> census;
    for (cn::PlaceId p = 0; p < net.place_count(); ++p) {
      const cn::Place& place = net.place(p);
      for (std::size_t s = 0; s < place.slots.size(); ++s) {
        const cp::ProcessId content = marking[net.slot_offset(p, s)];
        if (place.slots[s].kind == cn::Slot::Kind::kStatic) {
          EXPECT_NE(content, cn::kVacant) << "static vanished in marking " << m;
          continue;
        }
        if (content == cn::kVacant) continue;
        const cn::TokenTypeId type = place.slots[s].cell_type;
        ++census[type];
        EXPECT_TRUE(closures[type].count(content))
            << "marking " << m << ": cell of type "
            << net.token_type(type).name
            << " holds a derivative outside its type's closure";
      }
    }
    EXPECT_EQ(census, initial_census) << "token census changed in marking " << m;
  }
}

/// A random net: a ring of places, 1-2 token types with random cyclic
/// behaviours interleaving local work and hops, and hop transitions around
/// the ring.
std::string random_net(std::uint64_t seed) {
  cu::Xoshiro256 rng(seed);
  const std::size_t places = 2 + rng.below(3);
  const std::size_t types = 1 + rng.below(2);
  std::string source;
  for (std::size_t t = 0; t < types; ++t) {
    // T_t cycles: work* then hop (a firing), possibly with a choice.
    const std::string base = "Tok" + std::to_string(t);
    const std::size_t work_stages = 1 + rng.below(2);
    std::string current = base;
    for (std::size_t w = 0; w < work_stages; ++w) {
      const std::string next =
          w + 1 == work_stages ? base + "_ready" : base + "_w" + std::to_string(w);
      const double rate = 0.5 + 0.5 * static_cast<double>(rng.below(6));
      source += current + " = (work" + std::to_string(rng.below(2)) + ", " +
                cu::format_double(rate) + ")." + next + ";\n";
      current = next;
    }
    source += current + " = (hop, " +
              cu::format_double(0.5 + 0.5 * static_cast<double>(rng.below(4))) +
              ")." + base + ";\n";
  }
  for (std::size_t t = 0; t < types; ++t) {
    source += "@token Tok" + std::to_string(t) + ";\n";
  }
  for (std::size_t p = 0; p < places; ++p) {
    source += "@place ring" + std::to_string(p) + " {";
    for (std::size_t t = 0; t < types; ++t) {
      source += " cell Tok" + std::to_string(t);
      if (p == rng.below(places)) source += " = Tok" + std::to_string(t);
      source += ";";
    }
    source += " }\n";
  }
  for (std::size_t p = 0; p < places; ++p) {
    source += "@transition hop (rate infty) from ring" + std::to_string(p) +
              " to ring" + std::to_string((p + 1) % places) + ";\n";
  }
  return source;
}

}  // namespace

TEST(NetInvariants, PaperNets) {
  {
    auto extraction = chor::extract_activity_graph(
        chor::instant_message_model().activity_graphs()[0]);
    check_invariants(extraction.net);
  }
  {
    auto extraction = chor::extract_activity_graph(
        chor::pda_handover_model().activity_graphs()[0]);
    check_invariants(extraction.net);
  }
  {
    auto extraction = chor::extract_activity_graph(
        chor::file_activity_model().activity_graphs()[0]);
    check_invariants(extraction.net);
  }
}

class RandomNets : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomNets, InvariantsHoldOnEveryReachableMarking) {
  auto parsed = cn::parse_net(random_net(GetParam()));
  check_invariants(parsed.net);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNets,
                         ::testing::Range<std::uint64_t>(100, 120));
