// Edge cases of the generic exploration engine (explore::run) exercised on
// a synthetic state graph, away from the PEPA/PEPA-net policies: the
// max_states bound tripping mid-level under multiple lanes, an initial
// state with no successors, and successor exceptions raised from non-first
// expansion chunks — all required to behave identically at every lane
// count.
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "explore/engine.hpp"
#include "pepa/rate.hpp"
#include "util/error.hpp"
#include "util/striped_map.hpp"
#include "util/thread_pool.hpp"

namespace {

using choreo::explore::DeriveStats;
using choreo::explore::EngineOptions;
using choreo::pepa::Rate;

/// One synthetic move: an active rate and a target state value.
struct Move {
  Rate rate = Rate::active(1.0);
  std::size_t target = 0;
};

struct Transition {
  std::size_t source;
  std::size_t target;
  double rate;

  bool operator==(const Transition&) const = default;
};

/// Runs the engine over the graph `successors` describes (a function of the
/// state VALUE, so it is pure and thread-safe) and returns the committed
/// transitions plus the explored states.
struct Run {
  std::vector<std::size_t> states;
  std::vector<Transition> transitions;
  DeriveStats stats;
};

template <typename Successors>
Run run_engine(Successors successors, std::size_t lanes,
               choreo::util::ThreadPool& pool, EngineOptions options = {}) {
  Run run;
  choreo::util::StripedMap<std::size_t, std::size_t> index;
  options.threads = lanes;
  options.pool = &pool;
  run.stats = choreo::explore::run(
      run.states, index, std::size_t{0}, successors,
      [](const Move&) { return std::string("synthetic"); },
      [&run](std::size_t source, const Move& move, std::size_t target) {
        run.transitions.push_back({source, target, move.rate.value()});
      },
      options);
  return run;
}

/// 0 -> {1..width}, every other state terminal.
auto star_graph(std::size_t width) {
  return [width](const std::size_t& state) {
    std::vector<Move> moves;
    if (state == 0) {
      for (std::size_t v = 1; v <= width; ++v) {
        moves.push_back({Rate::active(1.0), v});
      }
    }
    return moves;
  };
}

TEST(ExploreEngine, ImmediatelyDeadlockedInitialState) {
  choreo::util::ThreadPool pool(4);
  for (const std::size_t lanes : {1u, 2u, 8u}) {
    const auto run = run_engine(star_graph(0), lanes, pool);
    EXPECT_EQ(run.states.size(), 1u);
    EXPECT_TRUE(run.transitions.empty());
    EXPECT_EQ(run.stats.levels, 1u);
    EXPECT_EQ(run.stats.peak_frontier, 1u);
    EXPECT_EQ(run.stats.dedup_misses, 1u);
    EXPECT_EQ(run.stats.dedup_hits, 0u);
  }
}

TEST(ExploreEngine, MaxStatesExceededMidLevelUnderManyLanes) {
  choreo::util::ThreadPool pool(4);
  for (const std::size_t lanes : {1u, 2u, 8u}) {
    EngineOptions options;
    options.max_states = 5;  // trips midway through numbering 64 children
    try {
      run_engine(star_graph(64), lanes, pool, options);
      FAIL() << "expected util::BudgetError at " << lanes << " lanes";
    } catch (const choreo::util::BudgetError& error) {
      EXPECT_STREQ(error.what(),
                   "state space exceeds the configured bound of 5 states"
                   " (state-space explosion)");
    }
  }
}

TEST(ExploreEngine, SuccessorErrorInNonFirstChunkIsRethrown) {
  choreo::util::ThreadPool pool(4);
  // Level 1 holds values 1..64 in canonical order; with 8 lanes value 51
  // sits in the 7th expansion chunk.  The engine must still surface it.
  const auto graph = [](const std::size_t& state) {
    if (state == 51) throw std::runtime_error("boom 51");
    std::vector<Move> moves;
    if (state == 0) {
      for (std::size_t v = 1; v <= 64; ++v) {
        moves.push_back({Rate::active(1.0), v});
      }
    }
    return moves;
  };
  for (const std::size_t lanes : {1u, 2u, 8u}) {
    try {
      run_engine(graph, lanes, pool);
      FAIL() << "expected the successor error at " << lanes << " lanes";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "boom 51");
    }
  }
}

TEST(ExploreEngine, CanonicallyFirstSuccessorErrorWinsAtEveryLaneCount) {
  choreo::util::ThreadPool pool(4);
  // Two failing states in one level: the one numbered first (value 11) must
  // be reported whichever lane reaches the other (value 51) first.
  const auto graph = [](const std::size_t& state) {
    if (state == 11) throw std::runtime_error("boom 11");
    if (state == 51) throw std::runtime_error("boom 51");
    std::vector<Move> moves;
    if (state == 0) {
      for (std::size_t v = 1; v <= 64; ++v) {
        moves.push_back({Rate::active(1.0), v});
      }
    }
    return moves;
  };
  for (const std::size_t lanes : {1u, 2u, 8u}) {
    try {
      run_engine(graph, lanes, pool);
      FAIL() << "expected the successor error at " << lanes << " lanes";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "boom 11");
    }
  }
}

TEST(ExploreEngine, PassiveMoveAtTopLevelIsRejectedWithSharedDiagnostic) {
  choreo::util::ThreadPool pool(4);
  const auto graph = [](const std::size_t& state) {
    std::vector<Move> moves;
    if (state == 0) moves.push_back({Rate::passive(), 1});
    return moves;
  };
  try {
    run_engine(graph, 1, pool);
    FAIL() << "expected util::ModelError";
  } catch (const choreo::util::ModelError& error) {
    EXPECT_STREQ(error.what(),
                 "activity 'synthetic' occurs passively at the top level;"
                 " synchronise it with an active partner");
  }
  EngineOptions tolerant;
  tolerant.allow_top_level_passive = true;
  const auto run = run_engine(graph, 1, pool, tolerant);
  EXPECT_EQ(run.states.size(), 1u);  // the passive move is dropped
  EXPECT_TRUE(run.transitions.empty());
}

TEST(ExploreEngine, CommitSequenceIsIdenticalAtEveryLaneCount) {
  choreo::util::ThreadPool pool(4);
  // A graph with sharing and cycles: value v moves to v+1, v*2 and v/2
  // (mod 97), so levels mix fresh and already-numbered targets.
  const auto graph = [](const std::size_t& state) {
    std::vector<Move> moves;
    moves.push_back({Rate::active(1.0 + static_cast<double>(state)),
                     (state + 1) % 97});
    moves.push_back({Rate::active(2.0), (state * 2) % 97});
    moves.push_back({Rate::active(3.0), state / 2});
    return moves;
  };
  const auto baseline = run_engine(graph, 1, pool);
  EXPECT_EQ(baseline.states.size(), 97u);
  for (const std::size_t lanes : {2u, 8u}) {
    const auto run = run_engine(graph, lanes, pool);
    EXPECT_EQ(run.states, baseline.states);
    EXPECT_EQ(run.transitions, baseline.transitions);
    EXPECT_EQ(run.stats.dedup_misses, baseline.stats.dedup_misses);
    EXPECT_EQ(run.stats.dedup_hits, baseline.stats.dedup_hits);
    EXPECT_EQ(run.stats.levels, baseline.stats.levels);
  }
}

TEST(ExploreEngine, ChunkGrainNeverChangesTheExploredSpace) {
  choreo::util::ThreadPool pool(4);
  // Same shared/cyclic graph as the lane-count test: chunk_grain moves the
  // work-stealing chunk boundaries, which must be invisible in the output.
  const auto graph = [](const std::size_t& state) {
    std::vector<Move> moves;
    moves.push_back({Rate::active(1.0 + static_cast<double>(state)),
                     (state + 1) % 97});
    moves.push_back({Rate::active(2.0), (state * 2) % 97});
    moves.push_back({Rate::active(3.0), state / 2});
    return moves;
  };
  const auto baseline = run_engine(graph, 1, pool);
  for (const std::size_t grain : {1u, 3u, 1024u}) {
    EngineOptions options;
    options.chunk_grain = grain;
    const auto run = run_engine(graph, 8, pool, options);
    EXPECT_EQ(run.states, baseline.states);
    EXPECT_EQ(run.transitions, baseline.transitions);
    EXPECT_EQ(run.stats.dedup_misses, baseline.stats.dedup_misses);
    EXPECT_EQ(run.stats.dedup_hits, baseline.stats.dedup_hits);
    EXPECT_EQ(run.stats.levels, baseline.stats.levels);
  }
}

}  // namespace
