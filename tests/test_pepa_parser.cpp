// Unit tests for the PEPA parser (workbench dialect).
#include <gtest/gtest.h>

#include "pepa/parser.hpp"
#include "pepa/printer.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cp = choreo::pepa;
namespace cu = choreo::util;

TEST(Parser, FileModelFromThePaper) {
  // Section 2.2 of the paper.
  auto model = cp::parse_model(R"(
    r_o = 2.0; r_r = 1.8; r_w = 1.2; r_c = 3.0;
    File      = (openread, r_o).InStream + (openwrite, r_o).OutStream;
    InStream  = (read, r_r).InStream + (close, r_c).File;
    OutStream = (write, r_w).OutStream + (close, r_c).File;
  )");
  EXPECT_EQ(model.parameters().size(), 4u);
  EXPECT_DOUBLE_EQ(model.parameter("r_r"), 1.8);
  EXPECT_EQ(model.definitions().size(), 3u);
  // Default system is the last definition.
  EXPECT_EQ(model.system(), model.term("OutStream"));
}

TEST(Parser, SystemDirective) {
  auto model = cp::parse_model(R"(
    P = (a, 1.0).P;
    Q = (b, 1.0).Q;
    @system P;
  )");
  EXPECT_EQ(model.system(), model.term("P"));
  EXPECT_TRUE(model.has_explicit_system());
}

TEST(Parser, CooperationAndHiding) {
  auto model = cp::parse_model(R"(
    P = (a, 1.0).P;
    Q = (a, infty).(b, 2.0).Q;
    S = (P <a> Q) / {b};
  )");
  const auto& node = model.arena().node(model.arena().body(
      *model.arena().find_constant("S")));
  EXPECT_EQ(node.op, cp::Op::kHiding);
  const auto& inner = model.arena().node(node.left);
  EXPECT_EQ(inner.op, cp::Op::kCooperation);
  ASSERT_EQ(inner.action_set.size(), 1u);
  EXPECT_EQ(model.arena().action_name(inner.action_set[0]), "a");
}

TEST(Parser, ParallelShorthand) {
  auto model = cp::parse_model("P = (a, 1.0).P; S = P || P;");
  const auto& node =
      model.arena().node(model.arena().body(*model.arena().find_constant("S")));
  EXPECT_EQ(node.op, cp::Op::kCooperation);
  EXPECT_TRUE(node.action_set.empty());
}

TEST(Parser, RateExpressions) {
  auto model = cp::parse_model(R"(
    base = 2.0;
    fast = base * 3;
    slow = (base + 1.0) / 6 - 0.25;
    P = (a, fast).(b, slow).(c, 2 * base).P;
  )");
  EXPECT_DOUBLE_EQ(model.parameter("fast"), 6.0);
  EXPECT_DOUBLE_EQ(model.parameter("slow"), 0.25);
}

TEST(Parser, PassiveRates) {
  auto model = cp::parse_model(R"(
    P = (a, infty).P;
    Q = (a, T).Q;
    W = (a, 2 * infty).W;
  )");
  auto check = [&](const char* name, double weight) {
    const auto& node =
        model.arena().node(model.arena().body(*model.arena().find_constant(name)));
    EXPECT_TRUE(node.rate.is_passive());
    EXPECT_DOUBLE_EQ(node.rate.value(), weight);
  };
  check("P", 1.0);
  check("Q", 1.0);
  check("W", 2.0);
}

TEST(Parser, PrefixChainsAndNestedChoice) {
  auto model = cp::parse_model(
      "P = (a, 1.0).(b, 2.0).((c, 3.0).P + (d, 4.0).P);");
  const std::string text =
      cp::to_string(model.arena(),
                    model.arena().body(*model.arena().find_constant("P")));
  EXPECT_EQ(text, "(a, 1).(b, 2).((c, 3).P + (d, 4).P)");
}

TEST(Parser, StopKeyword) {
  auto model = cp::parse_model("P = (a, 1.0).Stop;");
  const auto& node =
      model.arena().node(model.arena().body(*model.arena().find_constant("P")));
  EXPECT_EQ(model.arena().node(node.left).op, cp::Op::kStop);
}

TEST(Parser, CommentsAllStyles) {
  auto model = cp::parse_model(R"(
    // line comment
    % workbench comment
    # hash comment
    /* block
       comment */
    P = (a, 1.0).P;  // trailing
  )");
  EXPECT_EQ(model.definitions().size(), 1u);
}

TEST(Parser, UndefinedConstantRejected) {
  EXPECT_THROW(cp::parse_model("P = (a, 1.0).Missing;"), cu::ModelError);
}

TEST(Parser, DuplicateDefinitionRejected) {
  EXPECT_THROW(cp::parse_model("P = (a, 1.0).P; P = (b, 1.0).P;"),
               cu::ModelError);
}

TEST(Parser, UnknownParameterRejected) {
  EXPECT_THROW(cp::parse_model("P = (a, nope).P;"), cu::ParseError);
}

TEST(Parser, SyntaxErrorsCarryPositions) {
  try {
    cp::parse_model("P = (a, 1.0).P;\nQ = (b,, 1.0).Q;", "m.pepa");
    FAIL() << "expected ParseError";
  } catch (const cu::ParseError& error) {
    EXPECT_EQ(error.artefact(), "m.pepa");
    EXPECT_EQ(error.line(), 2u);
  }
}

TEST(Parser, ReservedWordsRejected) {
  EXPECT_THROW(cp::parse_model("Stop = (a, 1.0).Stop;"), cu::ParseError);
  EXPECT_THROW(cp::parse_model("infty = 2.0;"), cu::ParseError);
}

TEST(Parser, ParameterUsedAsProcessRejected) {
  EXPECT_THROW(cp::parse_model("r = 1.0; P = (a, 1.0).r;"), cu::ParseError);
}

TEST(Parser, SystemDirectiveUnknownNameRejected) {
  EXPECT_THROW(cp::parse_model("P = (a, 1.0).P; @system Nope;"), cu::ParseError);
}

TEST(Parser, EmptyCooperationSetViaAngles) {
  auto model = cp::parse_model("P = (a, 1.0).P; S = P <> P;");
  const auto& node =
      model.arena().node(model.arena().body(*model.arena().find_constant("S")));
  EXPECT_EQ(node.op, cp::Op::kCooperation);
  EXPECT_TRUE(node.action_set.empty());
}

TEST(Parser, RoundTripThroughPrinter) {
  const char* source = R"(
    P = (a, 1.5).P + (b, infty).Q;
    Q = (c, 2).(d, 3).P;
    S = (P <a, b> Q)/{c};
  )";
  auto model = cp::parse_model(source);
  const std::string printed =
      cp::to_string(model.arena(),
                    model.arena().body(*model.arena().find_constant("S")));
  // Re-parse the printed system inside a fresh model with the same
  // definitions; the bodies must intern to structurally equal terms.
  auto again = cp::parse_model(std::string(R"(
    P = (a, 1.5).P + (b, infty).Q;
    Q = (c, 2).(d, 3).P;
    S = )") + printed + ";");
  EXPECT_EQ(cp::to_string(again.arena(),
                          again.arena().body(*again.arena().find_constant("S"))),
            printed);
}

TEST(Parser, FileModelIsDeadlockFreeEndToEnd) {
  auto model = cp::parse_model(R"(
    File      = (openread, 2.0).InStream + (openwrite, 2.0).OutStream;
    InStream  = (read, 1.8).InStream + (close, 3.0).File;
    OutStream = (write, 1.2).OutStream + (close, 3.0).File;
    @system File;
  )");
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  EXPECT_EQ(space.state_count(), 3u);
  EXPECT_TRUE(space.deadlock_states().empty());
}

TEST(Parser, RobustAgainstMangledInput) {
  // Randomly mutate a valid model; the parser must either succeed or throw
  // a structured error -- never crash or hang.
  const std::string base = R"(
    r = 2.0;
    P = (a, r).Q + (b, infty).P;
    Q = (c, 1.5).(d, 0.5).P;
    S = (P <a, b> Q)/{c};
    @system S;
  )";
  choreo::util::Xoshiro256 rng(2718);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mangled = base;
    const std::size_t edits = 1 + rng.below(4);
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t pos = rng.below(mangled.size());
      switch (rng.below(3)) {
        case 0: mangled[pos] = static_cast<char>(32 + rng.below(95)); break;
        case 1: mangled.erase(pos, 1); break;
        default: mangled.insert(pos, 1, static_cast<char>(32 + rng.below(95)));
      }
    }
    try {
      auto model = cp::parse_model(mangled);
      (void)model;
    } catch (const cu::Error&) {
      // structured failure is fine
    }
  }
  SUCCEED();
}

TEST(Printer, ModelSourceRoundTrip) {
  const char* source = R"(
    r = 2.0;
    File      = (openread, r).InStream + (openwrite, r).OutStream;
    InStream  = (read, 1.8).InStream + (close, 3.0).File;
    OutStream = (write, 1.2).OutStream + (close, 3.0).File;
    Reader    = (openread, infty).(read, infty).(close, infty).Reader;
    System    = File <openread, read, close> Reader;
    @system System;
  )";
  auto model = cp::parse_model(source);
  const std::string emitted = cp::model_to_source(model);
  auto reparsed = cp::parse_model(emitted);

  cp::Semantics semantics_a(model.arena());
  cp::Semantics semantics_b(reparsed.arena());
  const auto space_a = cp::StateSpace::derive(semantics_a, model.system());
  const auto space_b = cp::StateSpace::derive(semantics_b, reparsed.system());
  EXPECT_EQ(space_a.state_count(), space_b.state_count());
  EXPECT_EQ(space_a.transitions().size(), space_b.transitions().size());
}

TEST(Printer, ModelSourceAnonymousSystem) {
  auto model = cp::parse_model("P = (a, 1.0).P;");
  // Default system is the last definition (a constant), but force an
  // anonymous composite system to exercise the synthetic wrapper.
  model.set_system(model.arena().cooperation(model.term("P"), {}, model.term("P")));
  const std::string emitted = cp::model_to_source(model);
  EXPECT_NE(emitted.find("Sys__emitted"), std::string::npos);
  auto reparsed = cp::parse_model(emitted);
  cp::Semantics semantics(reparsed.arena());
  const auto space = cp::StateSpace::derive(semantics, reparsed.system());
  EXPECT_EQ(space.state_count(), 1u);
}
