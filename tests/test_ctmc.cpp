// Unit tests for the CTMC engine: sparse matrices, generators, steady-state
// solvers (validated against closed-form birth-death results), transient
// uniformisation, and reward structures.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ctmc/generator.hpp"
#include "ctmc/rewards.hpp"
#include "ctmc/sparse.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"
#include "util/error.hpp"

namespace cc = choreo::ctmc;
namespace cu = choreo::util;

TEST(Sparse, FromTripletsAccumulatesDuplicates) {
  auto m = cc::CsrMatrix::from_triplets(
      3, {{0, 1, 1.0}, {0, 1, 2.0}, {2, 0, 5.0}, {1, 1, -3.0}});
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.nonzeros(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), -3.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(Sparse, ZeroSumEntriesAreDropped) {
  auto m = cc::CsrMatrix::from_triplets(2, {{0, 1, 2.0}, {0, 1, -2.0}});
  EXPECT_EQ(m.nonzeros(), 0u);
}

// at() binary-searches the column-sorted row, so lookups on wide rows must
// stay exact for every present column and zero everywhere between them.
TEST(Sparse, AtBinarySearchesWideRows) {
  std::vector<cc::Triplet> triplets;
  for (std::size_t col = 1; col < 101; col += 2) {
    triplets.push_back({0, col, static_cast<double>(col)});
  }
  auto m = cc::CsrMatrix::from_triplets(128, std::move(triplets));
  EXPECT_EQ(m.nonzeros(), 50u);
  for (std::size_t col = 0; col < 128; ++col) {
    const double expected =
        (col % 2 == 1 && col < 101) ? static_cast<double>(col) : 0.0;
    EXPECT_DOUBLE_EQ(m.at(0, col), expected) << "column " << col;
  }
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);  // empty row
}

// Duplicates accumulate in insertion order — the order that keeps the
// parallel assembly bit-identical to the sequential one.
TEST(Sparse, DuplicatesSumInInsertionOrder) {
  const double big = 1e16;
  // 1e16 + 1 - 1e16 == 2 in doubles when summed left to right (1e16 + 1
  // rounds to 1e16); any other order gives a different bit pattern.
  auto m = cc::CsrMatrix::from_triplets(
      2, {{0, 1, big}, {0, 1, 1.0}, {0, 1, 1.0}, {0, 1, -big}});
  EXPECT_EQ(m.at(0, 1), ((big + 1.0) + 1.0) - big);
}

TEST(Sparse, TransposeInvolution) {
  auto m = cc::CsrMatrix::from_triplets(
      4, {{0, 1, 1.5}, {1, 3, -2.0}, {3, 0, 4.0}, {2, 2, 7.0}});
  auto twice = m.transposed().transposed();
  EXPECT_EQ(twice.to_dense(), m.to_dense());
  EXPECT_DOUBLE_EQ(m.transposed().at(1, 0), 1.5);
}

TEST(Sparse, MultiplyMatchesDense) {
  auto m = cc::CsrMatrix::from_triplets(
      3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}, {2, 0, -1.0}});
  std::vector<double> x{1.0, 2.0, 3.0}, y(3);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
}

TEST(Generator, DiagonalBalancesRows) {
  auto g = cc::Generator::build(2, {{0, 1, 3.0}, {1, 0, 1.0}});
  g.validate();
  EXPECT_DOUBLE_EQ(g.exit_rate(0), 3.0);
  EXPECT_DOUBLE_EQ(g.exit_rate(1), 1.0);
  EXPECT_DOUBLE_EQ(g.max_exit_rate(), 3.0);
}

TEST(Generator, SelfLoopsIgnored) {
  auto g = cc::Generator::build(2, {{0, 0, 9.0}, {0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_DOUBLE_EQ(g.exit_rate(0), 1.0);
}

TEST(Generator, RejectsNonPositiveRates) {
  EXPECT_THROW(cc::Generator::build(2, {{0, 1, 0.0}}), cu::ModelError);
  EXPECT_THROW(cc::Generator::build(2, {{0, 1, -1.0}}), cu::ModelError);
}

TEST(Generator, DetectsAbsorbingStates) {
  auto g = cc::Generator::build(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  const auto absorbing = g.absorbing_states();
  ASSERT_EQ(absorbing.size(), 1u);
  EXPECT_EQ(absorbing[0], 2u);
}

namespace {

/// Two-state chain: pi = (mu, lambda) / (lambda + mu).
cc::Generator two_state(double lambda, double mu) {
  return cc::Generator::build(2, {{0, 1, lambda}, {1, 0, mu}});
}

/// M/M/1/K birth-death chain with arrival lambda and service mu.
cc::Generator mm1k(std::size_t k, double lambda, double mu) {
  std::vector<cc::RatedTransition> transitions;
  for (std::size_t i = 0; i < k; ++i) {
    transitions.push_back({i, i + 1, lambda});
    transitions.push_back({i + 1, i, mu});
  }
  return cc::Generator::build(k + 1, transitions);
}

std::vector<double> mm1k_exact(std::size_t k, double lambda, double mu) {
  const double rho = lambda / mu;
  std::vector<double> pi(k + 1);
  double sum = 0.0;
  for (std::size_t i = 0; i <= k; ++i) {
    pi[i] = std::pow(rho, static_cast<double>(i));
    sum += pi[i];
  }
  for (double& p : pi) p /= sum;
  return pi;
}

}  // namespace

class SteadyStateMethods : public ::testing::TestWithParam<cc::Method> {};

TEST_P(SteadyStateMethods, TwoStateClosedForm) {
  const double lambda = 2.0, mu = 5.0;
  cc::SolveOptions options;
  options.method = GetParam();
  const auto result = cc::steady_state(two_state(lambda, mu), options);
  ASSERT_EQ(result.distribution.size(), 2u);
  EXPECT_NEAR(result.distribution[0], mu / (lambda + mu), 1e-9);
  EXPECT_NEAR(result.distribution[1], lambda / (lambda + mu), 1e-9);
  EXPECT_EQ(result.method_used, GetParam());
}

TEST_P(SteadyStateMethods, Mm1kClosedForm) {
  const std::size_t k = 12;
  const double lambda = 1.4, mu = 2.0;
  cc::SolveOptions options;
  options.method = GetParam();
  const auto result = cc::steady_state(mm1k(k, lambda, mu), options);
  const auto exact = mm1k_exact(k, lambda, mu);
  for (std::size_t i = 0; i <= k; ++i) {
    EXPECT_NEAR(result.distribution[i], exact[i], 1e-8) << "state " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, SteadyStateMethods,
                         ::testing::Values(cc::Method::kDenseLU,
                                           cc::Method::kJacobi,
                                           cc::Method::kGaussSeidel,
                                           cc::Method::kSor, cc::Method::kPower),
                         [](const auto& info) {
                           return cc::method_name(info.param) == std::string("dense-lu")
                                      ? "DenseLU"
                                  : info.param == cc::Method::kJacobi ? "Jacobi"
                                  : info.param == cc::Method::kGaussSeidel
                                      ? "GaussSeidel"
                                  : info.param == cc::Method::kSor ? "Sor"
                                                                   : "Power";
                         });

TEST(SteadyState, AutoPicksDenseForSmallChains) {
  const auto result = cc::steady_state(two_state(1.0, 1.0));
  EXPECT_EQ(result.method_used, cc::Method::kDenseLU);
}

TEST(SteadyState, AutoPicksIterativeForLargeChains) {
  const auto result = cc::steady_state(mm1k(600, 1.0, 2.0));
  EXPECT_EQ(result.method_used, cc::Method::kGaussSeidel);
  const auto exact = mm1k_exact(600, 1.0, 2.0);
  EXPECT_NEAR(result.distribution[0], exact[0], 1e-8);
}

TEST(SteadyState, SweepsRejectAbsorbingStates) {
  auto g = cc::Generator::build(2, {{0, 1, 1.0}});
  cc::SolveOptions options;
  options.method = cc::Method::kGaussSeidel;
  EXPECT_THROW(cc::steady_state(g, options), cu::NumericError);
}

TEST(SteadyState, PowerHandlesAbsorbingChain) {
  auto g = cc::Generator::build(3, {{0, 1, 1.0}, {1, 2, 2.0}});
  cc::SolveOptions options;
  options.method = cc::Method::kPower;
  const auto result = cc::steady_state(g, options);
  EXPECT_NEAR(result.distribution[2], 1.0, 1e-8);
}

TEST(SteadyState, EmptyChainRejected) {
  cc::Generator empty;
  EXPECT_THROW(cc::steady_state(empty), cu::NumericError);
}

TEST(SteadyState, DistributionSumsToOne) {
  const auto result = cc::steady_state(mm1k(30, 3.0, 2.0));  // unstable rho>1
  double sum = 0.0;
  for (double p : result.distribution) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Transient, ConvergesToSteadyState) {
  const auto g = mm1k(8, 1.0, 2.0);
  const auto pi = cc::steady_state(g).distribution;
  const auto result = cc::transient_from_state(g, 0, 200.0);
  for (std::size_t i = 0; i < pi.size(); ++i) {
    EXPECT_NEAR(result.distribution[i], pi[i], 1e-6);
  }
}

TEST(Transient, TimeZeroIsInitial) {
  const auto g = two_state(1.0, 1.0);
  const auto result = cc::transient_from_state(g, 1, 0.0);
  EXPECT_DOUBLE_EQ(result.distribution[1], 1.0);
}

TEST(Transient, TwoStateClosedForm) {
  // pi_1(t) = l/(l+m) (1 - exp(-(l+m) t)) starting from state 0.
  const double l = 2.0, m = 3.0;
  const auto g = two_state(l, m);
  for (double t : {0.1, 0.5, 1.0, 2.0}) {
    const auto result = cc::transient_from_state(g, 0, t);
    const double expected = l / (l + m) * (1.0 - std::exp(-(l + m) * t));
    EXPECT_NEAR(result.distribution[1], expected, 1e-8) << "t=" << t;
  }
}

TEST(Transient, LargeMeanDoesNotUnderflow) {
  const auto g = two_state(100.0, 150.0);
  const auto result = cc::transient_from_state(g, 0, 50.0);  // lambda*t >> 745
  EXPECT_NEAR(result.distribution[0] + result.distribution[1], 1.0, 1e-9);
  EXPECT_NEAR(result.distribution[1], 100.0 / 250.0, 1e-6);
}

TEST(Transient, RejectsBadInputs) {
  const auto g = two_state(1.0, 1.0);
  EXPECT_THROW(cc::transient(g, {1.0}, 1.0), cu::NumericError);
  EXPECT_THROW(cc::transient(g, {1.0, 0.0}, -1.0), cu::NumericError);
}

TEST(Rewards, ExpectationAndProbability) {
  const std::vector<double> pi{0.25, 0.5, 0.25};
  const std::vector<double> reward{0.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(cc::expectation(pi, reward), 2.0);
  EXPECT_DOUBLE_EQ(
      cc::probability(pi, [](std::size_t s) { return s != 1; }), 0.5);
}

TEST(Rewards, ThroughputSumsSourceWeightedRates) {
  const std::vector<double> pi{0.5, 0.5};
  const std::vector<cc::RatedTransition> transitions{{0, 1, 4.0}, {1, 0, 2.0}};
  EXPECT_DOUBLE_EQ(cc::throughput(pi, transitions), 3.0);
}

TEST(Rewards, FlowBalanceAtSteadyState) {
  // In steady state the throughput of the forward action equals the
  // throughput of the backward action in a two-state cycle.
  const double l = 2.7, m = 0.9;
  const auto g = two_state(l, m);
  const auto pi = cc::steady_state(g).distribution;
  const double forward = cc::throughput(pi, {{0, 1, l}});
  const double backward = cc::throughput(pi, {{1, 0, m}});
  EXPECT_NEAR(forward, backward, 1e-10);
}

TEST(Transient, TighterEpsilonUsesMoreTerms) {
  const auto g = mm1k(6, 1.0, 2.0);
  cc::TransientOptions loose, tight;
  loose.epsilon = 1e-4;
  tight.epsilon = 1e-12;
  std::vector<double> initial(g.state_count(), 0.0);
  initial[0] = 1.0;
  const auto coarse = cc::transient(g, initial, 3.0, loose);
  const auto fine = cc::transient(g, initial, 3.0, tight);
  EXPECT_GT(fine.terms, coarse.terms);
  for (std::size_t s = 0; s < g.state_count(); ++s) {
    EXPECT_NEAR(coarse.distribution[s], fine.distribution[s], 1e-3);
  }
}
