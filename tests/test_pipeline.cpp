// End-to-end tests of the Figure-4 pipeline: project XMI in, annotated
// project XMI out, layout preserved.
#include <gtest/gtest.h>

#include "choreographer/paper_models.hpp"
#include "choreographer/pipeline.hpp"
#include "uml/xmi.hpp"
#include "xml/parse.hpp"
#include "xml/query.hpp"
#include "xml/write.hpp"

namespace chor = choreo::chor;
namespace cm = choreo::uml;
namespace cx = choreo::xml;

namespace {

/// A project file: the PDA model plus Poseidon-style layout data.
cx::Document pda_project() {
  cx::Document document = cm::to_xmi(chor::pda_handover_model());
  cx::Node& layout = document.root().add_element("Poseidon.layout");
  layout.add_element("node").set_attr("ref", "n1").set_attr("x", "100").set_attr(
      "y", "40");
  layout.add_element("node").set_attr("ref", "n2").set_attr("x", "260").set_attr(
      "y", "40");
  return document;
}

}  // namespace

TEST(Pipeline, AnalyseAnnotatesActivityDiagram) {
  cm::Model model = chor::pda_handover_model();
  const auto report = chor::analyse(model);
  ASSERT_EQ(report.activity_graphs.size(), 1u);
  const auto& result = report.activity_graphs[0];
  EXPECT_EQ(result.graph_name, "pda_handover");
  EXPECT_EQ(result.marking_count, 10u);
  EXPECT_FALSE(result.throughputs.empty());

  // Every action state now carries a throughput tag.
  for (const auto& node : model.activity_graphs()[0].nodes()) {
    if (node.kind == cm::ActivityNode::Kind::kAction) {
      EXPECT_TRUE(node.tags.has("throughput")) << node.name;
    }
  }
}

TEST(Pipeline, AnalyseAnnotatesStateMachines) {
  cm::Model model = chor::tomcat_model(false);
  const auto report = chor::analyse(model);
  ASSERT_EQ(report.state_machines.size(), 1u);
  const auto& result = report.state_machines[0];
  ASSERT_EQ(result.probabilities.size(), 2u);  // client + server

  double client_total = 0.0;
  for (double p : result.probabilities[0]) client_total += p;
  EXPECT_NEAR(client_total, 1.0, 1e-9);

  for (const auto& state : model.state_machines()[0].states()) {
    EXPECT_TRUE(state.tags.has("probability")) << state.name;
  }
}

TEST(Pipeline, RatesInputChangesResults) {
  chor::AnalysisOptions slow;
  slow.rates = chor::parse_rates("handover_1 = 0.05\nhandover_2 = 0.05");
  cm::Model fast_model = chor::pda_handover_model();
  cm::Model slow_model = chor::pda_handover_model();
  const auto fast_report = chor::analyse(fast_model);
  const auto slow_report = chor::analyse(slow_model, slow);
  // Slower handovers depress the ring's cycle throughput.
  double fast_handover = 0.0, slow_handover = 0.0;
  for (const auto& [name, value] : fast_report.activity_graphs[0].throughputs) {
    if (name == "handover_1") fast_handover = value;
  }
  for (const auto& [name, value] : slow_report.activity_graphs[0].throughputs) {
    if (name == "handover_1") slow_handover = value;
  }
  EXPECT_LT(slow_handover, fast_handover * 0.5);
}

TEST(Pipeline, ProjectRoundTripPreservesLayout) {
  const cx::Document project = pda_project();
  chor::AnalysisReport report;
  const cx::Document annotated = chor::analyse_project(project, {}, &report);

  // Layout data survived byte-for-byte.
  const cx::Node* layout = annotated.root().find_child("Poseidon.layout");
  ASSERT_NE(layout, nullptr);
  EXPECT_TRUE(
      layout->deep_equals(*project.root().find_child("Poseidon.layout")));

  // The reflected model carries throughput tags.
  const auto tags = cx::descendants_named(annotated.root(), "UML:TaggedValue");
  bool found_throughput = false;
  for (const cx::Node* tag : tags) {
    found_throughput |= tag->attr_or("tag", "") == "throughput";
  }
  EXPECT_TRUE(found_throughput);
  EXPECT_EQ(report.activity_graphs.size(), 1u);
}

TEST(Pipeline, FileLevelPipeline) {
  const std::string input = testing::TempDir() + "/pda_project.xmi";
  const std::string output = testing::TempDir() + "/pda_project_out.xmi";
  cx::write_file(pda_project(), input);
  const auto report = chor::analyse_project_file(input, output);
  EXPECT_EQ(report.activity_graphs.size(), 1u);
  const auto reloaded = cx::parse_file(output);
  EXPECT_NE(reloaded.root().find_child("Poseidon.layout"), nullptr);
  // The annotated document still parses as a UML model with results.
  const cm::Model model = cm::from_xmi(reloaded);
  bool annotated_action = false;
  for (const auto& node : model.activity_graphs()[0].nodes()) {
    annotated_action |= node.tags.has("throughput");
  }
  EXPECT_TRUE(annotated_action);
}

TEST(Pipeline, MixedModelAnalysesBothViews) {
  // A project holding both the activity diagram and the state diagrams.
  cm::Model model = chor::instant_message_model();
  const cm::Model tomcat = chor::tomcat_model(true);
  for (const auto& machine : tomcat.state_machines()) {
    model.add_state_machine(machine);
  }
  const auto report = chor::analyse(model);
  EXPECT_EQ(report.activity_graphs.size(), 1u);
  EXPECT_EQ(report.state_machines.size(), 1u);
}

TEST(Pipeline, AggregatedAnalysisMatchesFull) {
  cm::Model full_model = chor::pda_handover_model();
  cm::Model aggregated_model = chor::pda_handover_model();
  chor::AnalysisOptions aggregate_options;
  aggregate_options.aggregation = chor::Aggregation::kExact;
  const auto full = chor::analyse(full_model);
  const auto aggregated = chor::analyse(aggregated_model, aggregate_options);
  // kExact derives the quotient directly: the reported marking count is
  // the block count, never larger than the raw marking graph.
  EXPECT_LE(aggregated.activity_graphs[0].marking_count,
            full.activity_graphs[0].marking_count);
  EXPECT_GT(aggregated.activity_graphs[0].marking_count, 0u);
  ASSERT_EQ(full.activity_graphs[0].throughputs.size(),
            aggregated.activity_graphs[0].throughputs.size());
  for (std::size_t i = 0; i < full.activity_graphs[0].throughputs.size(); ++i) {
    EXPECT_EQ(full.activity_graphs[0].throughputs[i].first,
              aggregated.activity_graphs[0].throughputs[i].first);
    EXPECT_NEAR(full.activity_graphs[0].throughputs[i].second,
                aggregated.activity_graphs[0].throughputs[i].second, 1e-10);
  }
}
