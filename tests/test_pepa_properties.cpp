// Property-based tests: random PEPA models (seed-parameterised TEST_P
// sweeps) checked against semantic invariants that must hold for *every*
// model -- determinism of derivation, probability conservation, throughput
// accounting, cooperation commutativity, hiding invariance, lumping
// exactness, and transient/steady-state consistency.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "ctmc/lumping.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"
#include "pepa/measures.hpp"
#include "pepa/parser.hpp"
#include "pepa/printer.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace cp = choreo::pepa;
namespace cc = choreo::ctmc;
namespace cu = choreo::util;

namespace {

constexpr const char* kActions[] = {"a", "b", "c", "d"};

/// Generates a random PEPA model in source form: 2-3 sequential components
/// (each a guarded choice of prefixes per state, so derivation always
/// terminates) composed under cooperation over random action subsets.
/// `swap_operands` flips the top-level cooperation for the commutativity
/// property; `hide` wraps the system in a hiding set.
std::string random_model(std::uint64_t seed, bool swap_operands = false,
                         const std::string& hide_set = "") {
  cu::Xoshiro256 rng(seed);
  const std::size_t components = 2 + rng.below(2);
  std::string source;
  std::vector<std::string> component_names;
  for (std::size_t c = 0; c < components; ++c) {
    const std::size_t states = 2 + rng.below(3);
    std::vector<std::string> state_names;
    for (std::size_t s = 0; s < states; ++s) {
      state_names.push_back("C" + std::to_string(c) + "S" + std::to_string(s));
    }
    component_names.push_back(state_names[0]);
    for (std::size_t s = 0; s < states; ++s) {
      source += state_names[s] + " = ";
      const std::size_t branches = 1 + rng.below(2);
      for (std::size_t b = 0; b < branches; ++b) {
        if (b != 0) source += " + ";
        const char* action = kActions[rng.below(4)];
        const double rate = 0.5 + 0.25 * static_cast<double>(rng.below(14));
        const std::size_t target = rng.below(states);
        source += "(" + std::string(action) + ", " + cu::format_double(rate) +
                  ")." + state_names[target];
      }
      source += ";\n";
    }
  }
  auto coop_set = [&rng]() {
    std::string set;
    for (const char* action : kActions) {
      if (rng.below(3) == 0) {  // each action in the set with p = 1/3
        if (!set.empty()) set += ", ";
        set += action;
      }
    }
    return set.empty() ? std::string("||") : "<" + set + ">";
  };
  std::string system = component_names.back();
  for (std::size_t c = components - 1; c-- > 0;) {
    const std::string op = coop_set();
    system = swap_operands && c == 0
                 ? "(" + system + ") " + op + " " + component_names[c]
                 : component_names[c] + " " + op + " (" + system + ")";
  }
  if (!hide_set.empty()) system = "(" + system + ")/{" + hide_set + "}";
  source += "Sys = " + system + ";\n@system Sys;\n";
  return source;
}

struct Solved {
  std::size_t states = 0;
  /// Deadlocked or reducible with several recurrent classes (the steady
  /// state is then not unique); the distribution-level properties skip.
  bool has_deadlock = false;
  double residual = 0.0;
  std::vector<double> distribution;
  std::map<std::string, double> throughputs;
  double total_event_rate = 0.0;
};

Solved solve_source(const std::string& source) {
  cp::Model model = cp::parse_model(source);
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  Solved out;
  out.states = space.state_count();
  out.has_deadlock = !space.deadlock_states().empty();
  if (out.has_deadlock) return out;
  cc::SolveResult solved;
  try {
    solved = cc::steady_state(space.generator());
  } catch (const cu::NumericError&) {
    out.has_deadlock = true;  // singular system: several recurrent classes
    return out;
  }
  out.residual = solved.residual;
  out.distribution = solved.distribution;
  for (const auto& [action, value] :
       cp::all_throughputs(space, solved.distribution, model.arena())) {
    out.throughputs[model.arena().action_name(action)] = value;
    out.total_event_rate += value;
  }
  return out;
}

}  // namespace

class RandomModels : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomModels, DerivationIsDeterministic) {
  const std::string source = random_model(GetParam());
  const Solved first = solve_source(source);
  const Solved second = solve_source(source);
  EXPECT_EQ(first.states, second.states);
  EXPECT_EQ(first.throughputs, second.throughputs);
}

TEST_P(RandomModels, SteadyStateIsAProbabilityDistribution) {
  const Solved solved = solve_source(random_model(GetParam()));
  if (solved.has_deadlock) GTEST_SKIP() << "deadlocked composition";
  double sum = 0.0;
  for (double p : solved.distribution) {
    EXPECT_GE(p, -1e-12);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_LT(solved.residual, 1e-8);
}

TEST_P(RandomModels, ThroughputsAccountForTotalEventRate) {
  // Sum of per-action throughputs == expected total exit rate.
  const std::string source = random_model(GetParam());
  cp::Model model = cp::parse_model(source);
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  if (!space.deadlock_states().empty()) GTEST_SKIP() << "deadlocked";
  const auto generator = space.generator();
  cc::SolveResult solved;
  try {
    solved = cc::steady_state(generator);
  } catch (const cu::NumericError&) {
    GTEST_SKIP() << "several recurrent classes";
  }
  double total_throughput = 0.0;
  for (const auto& [action, value] :
       cp::all_throughputs(space, solved.distribution, model.arena())) {
    total_throughput += value;
  }
  // The generator drops self-loops (they do not affect the distribution),
  // but self-loop activities still complete and count towards throughput.
  double self_loop_rate = 0.0;
  for (const auto& t : space.transitions()) {
    if (t.source == t.target) {
      self_loop_rate += solved.distribution[t.source] * t.rate;
    }
  }
  double expected_exit = 0.0;
  for (std::size_t s = 0; s < space.state_count(); ++s) {
    expected_exit += solved.distribution[s] * generator.exit_rate(s);
  }
  EXPECT_NEAR(total_throughput, expected_exit + self_loop_rate, 1e-8);
}

TEST_P(RandomModels, CooperationIsCommutative) {
  // P <L> Q and Q <L> P derive isomorphic chains: identical state counts
  // and identical per-action throughputs.
  const Solved normal = solve_source(random_model(GetParam(), false));
  const Solved swapped = solve_source(random_model(GetParam(), true));
  EXPECT_EQ(normal.states, swapped.states);
  EXPECT_EQ(normal.has_deadlock, swapped.has_deadlock);
  if (normal.has_deadlock) GTEST_SKIP() << "deadlocked composition";
  ASSERT_EQ(normal.throughputs.size(), swapped.throughputs.size());
  for (const auto& [action, value] : normal.throughputs) {
    ASSERT_TRUE(swapped.throughputs.count(action)) << action;
    EXPECT_NEAR(value, swapped.throughputs.at(action), 1e-8) << action;
  }
}

TEST_P(RandomModels, HidingPreservesDynamics) {
  // Hiding renames labels to tau but leaves the chain isomorphic: state
  // count and total event rate are invariant, and the hidden actions'
  // throughput reappears as tau's.
  const Solved plain = solve_source(random_model(GetParam()));
  const Solved hidden = solve_source(random_model(GetParam(), false, "a, b"));
  EXPECT_EQ(plain.states, hidden.states);
  EXPECT_EQ(plain.has_deadlock, hidden.has_deadlock);
  if (plain.has_deadlock) GTEST_SKIP() << "deadlocked composition";
  EXPECT_NEAR(plain.total_event_rate, hidden.total_event_rate, 1e-8);
  const double hidden_mass =
      (plain.throughputs.count("a") ? plain.throughputs.at("a") : 0.0) +
      (plain.throughputs.count("b") ? plain.throughputs.at("b") : 0.0);
  const double tau_mass =
      hidden.throughputs.count("tau") ? hidden.throughputs.at("tau") : 0.0;
  EXPECT_NEAR(hidden_mass, tau_mass, 1e-8);
}

TEST_P(RandomModels, LumpingQuotientIsExact) {
  const std::string source = random_model(GetParam());
  cp::Model model = cp::parse_model(source);
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  if (!space.deadlock_states().empty()) GTEST_SKIP() << "deadlocked";
  const auto generator = space.generator();
  const auto lumping = cc::compute_lumping(generator);
  cc::check_lumpable(generator, lumping);
  std::vector<double> pi_full, pi_quotient;
  try {
    pi_full = cc::steady_state(generator).distribution;
    pi_quotient = cc::steady_state(lumping.quotient(generator)).distribution;
  } catch (const cu::NumericError&) {
    GTEST_SKIP() << "several recurrent classes";
  }
  const auto aggregated = lumping.aggregate(pi_full);
  ASSERT_EQ(pi_quotient.size(), aggregated.size());
  for (std::size_t b = 0; b < aggregated.size(); ++b) {
    EXPECT_NEAR(pi_quotient[b], aggregated[b], 1e-8);
  }
}

TEST_P(RandomModels, TransientConvergesToSteadyState) {
  const std::string source = random_model(GetParam());
  cp::Model model = cp::parse_model(source);
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  if (!space.deadlock_states().empty()) GTEST_SKIP() << "deadlocked";
  const auto generator = space.generator();
  std::vector<double> pi;
  try {
    pi = cc::steady_state(generator).distribution;
  } catch (const cu::NumericError&) {
    GTEST_SKIP() << "several recurrent classes";
  }
  // A reducible but deadlock-free chain may have transient states whose
  // long-run mass is zero; uniformisation must agree with pi Q = 0 in that
  // case too as long as the recurrent class is unique.  Conservatively run
  // from the steady state itself: it must be a fixed point of evolution.
  const auto evolved = cc::transient(generator, pi, 10.0);
  for (std::size_t s = 0; s < pi.size(); ++s) {
    EXPECT_NEAR(evolved.distribution[s], pi[s], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModels,
                         ::testing::Range<std::uint64_t>(0, 24));
