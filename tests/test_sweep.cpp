// Tests for the design-space sweep engine: spec expansion, parser rate
// provenance, structure-sharing rebind correctness against independent
// re-derivation, derive-once accounting, and thread-count determinism.
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pepa/parser.hpp"
#include "service/cache.hpp"
#include "service/metrics.hpp"
#include "service/scheduler.hpp"
#include "sweep/rebind.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace choreo;

std::string tomcat_source(double locs) {
  std::ostringstream out;
  out << "req = 5.0; offp = 2.0;\n"
      << "locs = " << util::format_double(locs)
      << "; exec = 10.0; resp = 25.0;\n"
      << "GenerateRequest  = (request, req).WaitForResponse;\n"
      << "WaitForResponse  = (response, infty).ProcessResponse;\n"
      << "ProcessResponse  = (offlineProcessing, offp).GenerateRequest;\n"
      << "ServerIdle       = (request, infty).ProcessRequest;\n"
      << "ProcessRequest   = (locateservlet, locs).CompiledJavaCode;\n"
      << "CompiledJavaCode = (execute, exec).SendHTTPResponse;\n"
      << "SendHTTPResponse = (response, resp).ServerIdle;\n"
      << "System = GenerateRequest <request, response> ServerIdle;\n"
      << "@system System;\n";
  return out.str();
}

// --- sweep specifications -------------------------------------------------

TEST(SweepSpec, LinearAxisIsInclusiveAndEvenlySpaced) {
  const sweep::Axis axis = sweep::Axis::linear("r", 1.0, 3.0, 5);
  ASSERT_EQ(axis.values.size(), 5u);
  EXPECT_DOUBLE_EQ(axis.values.front(), 1.0);
  EXPECT_DOUBLE_EQ(axis.values[2], 2.0);
  EXPECT_DOUBLE_EQ(axis.values.back(), 3.0);
}

TEST(SweepSpec, LogAxisIsGeometric) {
  const sweep::Axis axis = sweep::Axis::logspace("r", 1.0, 100.0, 3);
  ASSERT_EQ(axis.values.size(), 3u);
  EXPECT_NEAR(axis.values[0], 1.0, 1e-12);
  EXPECT_NEAR(axis.values[1], 10.0, 1e-12);
  EXPECT_NEAR(axis.values[2], 100.0, 1e-12);
}

TEST(SweepSpec, CartesianEnumeratesLastAxisFastest) {
  sweep::SweepSpec spec;
  spec.axes = {sweep::Axis::list("a", {1.0, 2.0}),
               sweep::Axis::list("b", {10.0, 20.0, 30.0})};
  spec.validate();
  ASSERT_EQ(spec.point_count(), 6u);
  EXPECT_EQ(spec.point(0), (std::vector<double>{1.0, 10.0}));
  EXPECT_EQ(spec.point(1), (std::vector<double>{1.0, 20.0}));
  EXPECT_EQ(spec.point(3), (std::vector<double>{2.0, 10.0}));
  EXPECT_EQ(spec.point(5), (std::vector<double>{2.0, 30.0}));
}

TEST(SweepSpec, ZipPairsPositionByPosition) {
  sweep::SweepSpec spec;
  spec.combine = sweep::Combine::kZip;
  spec.axes = {sweep::Axis::list("a", {1.0, 2.0}),
               sweep::Axis::list("b", {10.0, 20.0})};
  spec.validate();
  ASSERT_EQ(spec.point_count(), 2u);
  EXPECT_EQ(spec.point(1), (std::vector<double>{2.0, 20.0}));
}

TEST(SweepSpec, ValidateRejectsIllFormedSpecs) {
  sweep::SweepSpec empty;
  EXPECT_THROW(empty.validate(), util::ModelError);

  sweep::SweepSpec nonpositive;
  nonpositive.axes = {sweep::Axis::list("a", {1.0, 0.0})};
  EXPECT_THROW(nonpositive.validate(), util::ModelError);

  sweep::SweepSpec duplicate;
  duplicate.axes = {sweep::Axis::list("a", {1.0}),
                    sweep::Axis::list("a", {2.0})};
  EXPECT_THROW(duplicate.validate(), util::ModelError);

  sweep::SweepSpec ragged;
  ragged.combine = sweep::Combine::kZip;
  ragged.axes = {sweep::Axis::list("a", {1.0, 2.0}),
                 sweep::Axis::list("b", {1.0})};
  EXPECT_THROW(ragged.validate(), util::ModelError);
}

TEST(SweepSpec, ParsesAxisSyntax) {
  const sweep::Axis linear = sweep::parse_axis("locs=2:80:40");
  EXPECT_EQ(linear.parameter, "locs");
  EXPECT_EQ(linear.values.size(), 40u);
  EXPECT_DOUBLE_EQ(linear.values.front(), 2.0);
  EXPECT_DOUBLE_EQ(linear.values.back(), 80.0);

  const sweep::Axis log = sweep::parse_axis("r=log:0.1:10:5");
  EXPECT_EQ(log.values.size(), 5u);
  EXPECT_NEAR(log.values[2], 1.0, 1e-12);

  const sweep::Axis list = sweep::parse_axis("s=1,2.5,7");
  EXPECT_EQ(list.values, (std::vector<double>{1.0, 2.5, 7.0}));

  const sweep::Axis single = sweep::parse_axis("s=4.25");
  EXPECT_EQ(single.values, (std::vector<double>{4.25}));

  EXPECT_THROW(sweep::parse_axis("noequals"), util::Error);
  EXPECT_THROW(sweep::parse_axis("r=1:2"), util::Error);
  EXPECT_THROW(sweep::parse_axis("r=1:2:notanumber"), util::Error);
}

// --- parser provenance ----------------------------------------------------

TEST(RateProvenance, SingleAndScaledParametersAreSweepable) {
  pepa::Model model = pepa::parse_model(
      "r = 1.0; s = 2.0;\n"
      "P = (fast, 2*r).Q;\n"
      "Q = (slow, s).P;\n"
      "@system P;\n",
      "provenance");
  // Both parameters resolve to clean tags: the rebinder accepts them.
  sweep::RateRebinder rebinder(model, {"r", "s"});
  EXPECT_EQ(rebinder.base_values(), (std::vector<double>{1.0, 2.0}));
}

TEST(RateProvenance, CompoundExpressionsMakeParametersOpaque) {
  pepa::Model model = pepa::parse_model(
      "r = 1.0;\n"
      "P = (a, r + 1).P;\n"
      "@system P;\n",
      "compound");
  EXPECT_TRUE(model.parameter_is_opaque("r"));
  EXPECT_THROW(sweep::RateRebinder(model, {"r"}), util::ModelError);
}

TEST(RateProvenance, DerivedParametersMakeTheirInputsOpaque) {
  pepa::Model model = pepa::parse_model(
      "r = 1.0; r2 = r * 2;\n"
      "P = (a, r).(b, r2).P;\n"
      "@system P;\n",
      "derived");
  // r2 was evaluated from r at parse time; sweeping r would leave r2 stale.
  EXPECT_TRUE(model.parameter_is_opaque("r"));
  EXPECT_FALSE(model.parameter_is_opaque("r2"));
  EXPECT_THROW(sweep::RateRebinder(model, {"r"}), util::ModelError);
  EXPECT_NO_THROW(sweep::RateRebinder(model, {"r2"}));
}

TEST(RateProvenance, HashConsingConflictWithLiteralIsDetected) {
  // Both prefixes intern to the same term (same action, rate value and
  // continuation) but only one was written through the parameter.
  pepa::Model model = pepa::parse_model(
      "r = 2.0;\n"
      "P = (a, r).Stop + (a, 2.0).Stop;\n"
      "@system P;\n",
      "conflict");
  EXPECT_TRUE(model.parameter_is_opaque("r"));
  EXPECT_THROW(sweep::RateRebinder(model, {"r"}), util::ModelError);
}

TEST(RateProvenance, UnusedParameterIsRejected) {
  pepa::Model model = pepa::parse_model(
      "r = 1.0; unused = 3.0;\n"
      "P = (a, r).P;\n"
      "@system P;\n",
      "unused");
  EXPECT_THROW(sweep::RateRebinder(model, {"unused"}), util::ModelError);
  EXPECT_THROW(sweep::RateRebinder(model, {"nosuch"}), util::ModelError);
}

// --- fingerprints ---------------------------------------------------------

TEST(Fingerprint, StructureIgnoresRateValuesButNotShape) {
  pepa::Model base = pepa::parse_model(tomcat_source(40.0), "base");
  pepa::Model other = pepa::parse_model(tomcat_source(7.5), "other");
  EXPECT_EQ(sweep::structure_fingerprint(base),
            sweep::structure_fingerprint(other));

  pepa::Model different = pepa::parse_model(
      "r_o = 2.0; r_r = 1.8; r_w = 1.2; r_c = 3.0;\n"
      "File      = (openread, r_o).InStream + (openwrite, r_o).OutStream;\n"
      "InStream  = (read, r_r).InStream + (close, r_c).File;\n"
      "OutStream = (write, r_w).OutStream + (close, r_c).File;\n"
      "@system File;\n",
      "file");
  EXPECT_NE(sweep::structure_fingerprint(base),
            sweep::structure_fingerprint(different));
}

TEST(Fingerprint, RatePayloadDistinguishesPoints) {
  pepa::Model model = pepa::parse_model(tomcat_source(40.0), "tomcat");
  sweep::RateRebinder rebinder(model, {"locs"});
  const std::vector<double> a{10.0};
  const std::vector<double> b{20.0};
  EXPECT_EQ(rebinder.rate_fingerprint(a), rebinder.rate_fingerprint(a));
  EXPECT_NE(rebinder.rate_fingerprint(a), rebinder.rate_fingerprint(b));
}

// --- rebind correctness ---------------------------------------------------

TEST(SweepRunner, MatchesIndependentDerivationAtEveryPoint) {
  pepa::Model model = pepa::parse_model(tomcat_source(40.0), "tomcat");
  sweep::SweepSpec spec;
  spec.axes = {sweep::Axis::list("locs", {10.0, 40.0, 80.0})};
  sweep::SweepOptions options;
  options.threads = 1;
  const sweep::SweepTable table = sweep::sweep(model, spec, options);

  ASSERT_EQ(table.rows.size(), 3u);
  EXPECT_EQ(table.derivations, 1u);
  for (const sweep::SweepRow& row : table.rows) {
    ASSERT_TRUE(row.ok()) << row.error;

    // Reference: a completely fresh parse + derivation + solve at this
    // point's rates.
    pepa::Model reference =
        pepa::parse_model(tomcat_source(row.values[0]), "reference");
    pepa::Semantics semantics(reference.arena());
    const pepa::StateSpace space =
        pepa::StateSpace::derive(semantics, reference.system());
    const ctmc::SolveResult solved = ctmc::steady_state(space.generator());
    ASSERT_EQ(table.measures.size(),
              reference.arena().action_count() - 1);
    for (pepa::ActionId action = 1;
         action < reference.arena().action_count(); ++action) {
      const double expected =
          space.lts().action_throughput(solved.distribution, action);
      EXPECT_NEAR(row.measures[action - 1], expected, 1e-9)
          << "action " << reference.arena().action_name(action)
          << " at locs=" << row.values[0];
    }
  }
}

TEST(SweepRunner, DerivesExactlyOnceForManyPoints) {
  pepa::Model model = pepa::parse_model(tomcat_source(40.0), "tomcat");
  sweep::SweepSpec spec;
  spec.axes = {sweep::Axis::linear("locs", 2.0, 80.0, 25)};
  sweep::SweepOptions options;
  options.threads = 1;
  const sweep::SweepTable table = sweep::sweep(model, spec, options);

  EXPECT_EQ(table.derivations, 1u);
  EXPECT_GT(table.derive_stats.levels, 0u);
  EXPECT_GT(table.state_count, 0u);
  EXPECT_GT(table.transition_count, 0u);
  for (const sweep::SweepRow& row : table.rows) {
    EXPECT_TRUE(row.ok()) << row.error;
  }
}

TEST(SweepRunner, TableIsIdenticalAtThreadCounts128) {
  sweep::SweepSpec spec;
  spec.axes = {sweep::Axis::linear("locs", 5.0, 60.0, 4),
               sweep::Axis::linear("req", 2.0, 8.0, 3)};

  auto run = [&](std::size_t threads) {
    pepa::Model model = pepa::parse_model(tomcat_source(40.0), "tomcat");
    sweep::SweepOptions options;
    options.threads = threads;
    util::ThreadPool pool(threads);
    if (threads > 1) options.pool = &pool;
    return sweep::sweep(model, spec, options);
  };

  const sweep::SweepTable one = run(1);
  const sweep::SweepTable two = run(2);
  const sweep::SweepTable eight = run(8);

  ASSERT_EQ(one.rows.size(), 12u);
  ASSERT_EQ(two.rows.size(), one.rows.size());
  ASSERT_EQ(eight.rows.size(), one.rows.size());
  for (std::size_t r = 0; r < one.rows.size(); ++r) {
    EXPECT_EQ(one.rows[r].values, two.rows[r].values);
    EXPECT_EQ(one.rows[r].values, eight.rows[r].values);
    ASSERT_TRUE(one.rows[r].ok()) << one.rows[r].error;
    // Bit-identical, not just close: every per-point computation is
    // independent of the lane count.
    ASSERT_EQ(one.rows[r].measures.size(), two.rows[r].measures.size());
    ASSERT_EQ(one.rows[r].measures.size(), eight.rows[r].measures.size());
    for (std::size_t m = 0; m < one.rows[r].measures.size(); ++m) {
      EXPECT_EQ(one.rows[r].measures[m], two.rows[r].measures[m]);
      EXPECT_EQ(one.rows[r].measures[m], eight.rows[r].measures[m]);
    }
  }
  EXPECT_EQ(one.to_csv(), two.to_csv());
  EXPECT_EQ(one.to_csv(), eight.to_csv());
}

TEST(SweepRunner, ScaledTagMatchesAnalyticThroughput) {
  pepa::Model model = pepa::parse_model(
      "r = 1.0; s = 3.0;\n"
      "P = (fast, 2*r).Q;\n"
      "Q = (slow, s).P;\n"
      "@system P;\n",
      "scaled");
  sweep::SweepSpec spec;
  spec.axes = {sweep::Axis::list("r", {0.5, 1.0, 4.0})};
  sweep::SweepOptions options;
  options.threads = 1;
  const sweep::SweepTable table = sweep::sweep(model, spec, options);
  ASSERT_EQ(table.measures.size(), 2u);
  EXPECT_EQ(table.measures[0], "throughput:fast");
  for (const sweep::SweepRow& row : table.rows) {
    ASSERT_TRUE(row.ok()) << row.error;
    const double r = row.values[0];
    // Two-state cycle: throughput(fast) = 2r * s / (2r + s).
    const double expected = 2.0 * r * 3.0 / (2.0 * r + 3.0);
    EXPECT_NEAR(row.measures[0], expected, 1e-12);
    EXPECT_NEAR(row.measures[1], expected, 1e-12);  // slow balances fast
  }
}

TEST(SweepRunner, FailedPointsDoNotPoisonTheTable) {
  pepa::Model model = pepa::parse_model(tomcat_source(40.0), "tomcat");
  sweep::SweepSpec spec;
  spec.axes = {sweep::Axis::list("locs", {10.0, 40.0})};
  sweep::SweepOptions options;
  options.threads = 1;
  options.solver.method = ctmc::Method::kPower;
  options.solver.max_iterations = 1;
  options.solver.tolerance = 1e-300;  // unreachable: every solve fails
  const sweep::SweepTable table = sweep::sweep(model, spec, options);
  ASSERT_EQ(table.rows.size(), 2u);
  for (const sweep::SweepRow& row : table.rows) {
    EXPECT_FALSE(row.ok());
    EXPECT_FALSE(row.error.empty());
  }
  EXPECT_EQ(table.derivations, 1u);  // the derivation itself succeeded
}

TEST(SweepRunner, FluidBackendNeverDerives) {
  pepa::Model model = pepa::parse_model(
      "r = 1.0; s = 2.0;\n"
      "Think = (task, r).Wait;\n"
      "Wait  = (reply, s).Think;\n"
      "Pop = Think[50];\n"
      "@system Pop;\n",
      "fluid");
  sweep::SweepSpec spec;
  spec.axes = {sweep::Axis::list("r", {0.5, 1.0, 2.0})};
  sweep::SweepOptions options;
  options.threads = 1;
  options.backend = sweep::Backend::kFluid;
  const sweep::SweepTable table = sweep::sweep(model, spec, options);
  EXPECT_EQ(table.derivations, 0u);
  EXPECT_EQ(table.state_count, 0u);
  ASSERT_EQ(table.rows.size(), 3u);
  for (const sweep::SweepRow& row : table.rows) {
    ASSERT_TRUE(row.ok()) << row.error;
    for (const double measure : row.measures) {
      EXPECT_TRUE(std::isfinite(measure));
      EXPECT_GT(measure, 0.0);
    }
  }
  // More thinkers per unit time as r grows: throughput is monotone.
  EXPECT_LT(table.rows[0].measures[0], table.rows[1].measures[0]);
  EXPECT_LT(table.rows[1].measures[0], table.rows[2].measures[0]);
}

TEST(SweepTable, CsvAndJsonAreWellFormed) {
  pepa::Model model = pepa::parse_model(tomcat_source(40.0), "tomcat");
  sweep::SweepSpec spec;
  spec.axes = {sweep::Axis::list("locs", {10.0, 40.0})};
  sweep::SweepOptions options;
  options.threads = 1;
  const sweep::SweepTable table = sweep::sweep(model, spec, options);

  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("# structure=0x"), std::string::npos);
  EXPECT_NE(csv.find("locs,throughput:"), std::string::npos);
  // Header comment + column header + one line per point.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);

  const std::string json = table.to_json();
  EXPECT_NE(json.find("\"derivations\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rows\""), std::string::npos);
}

// --- the service's sweep job kind -----------------------------------------

std::string write_temp_model(const std::string& name,
                             const std::string& source) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary);
  out << source;
  EXPECT_TRUE(out.flush().good());
  return path;
}

TEST(SweepService, SchedulerDerivesOnceAndServesRepeatsFromCache) {
  const std::string path =
      write_temp_model("sweep_service_tomcat.pepa", tomcat_source(40.0));

  service::Registry registry;
  service::ResultCache cache({.registry = &registry});
  service::SchedulerOptions scheduler_options;
  scheduler_options.workers = 2;
  scheduler_options.cache = &cache;
  scheduler_options.registry = &registry;
  service::Scheduler scheduler(scheduler_options);

  service::JobRequest request;
  request.sweep.emplace();
  request.sweep->model_path = path;
  request.sweep->spec.axes = {sweep::Axis::linear("locs", 5.0, 100.0, 10)};

  const service::JobResult first = scheduler.submit(request).wait();
  ASSERT_EQ(first.status, service::JobStatus::kDone) << first.error;
  ASSERT_TRUE(first.sweep.has_value());
  EXPECT_EQ(first.sweep->rows.size(), 10u);
  EXPECT_EQ(first.sweep->derivations, 1u);
  EXPECT_EQ(first.sweep->points_from_cache, 0u);
  EXPECT_FALSE(first.from_cache);
  EXPECT_EQ(first.aggregation_used, chor::Aggregation::kNone);
  for (const sweep::SweepRow& row : first.sweep->rows) {
    ASSERT_TRUE(row.ok()) << row.error;
  }

  // A K-point sweep performs exactly one derivation, visible both on the
  // table and on the service metrics.
  EXPECT_EQ(registry.counter("choreo_sweep_derivations_total", "").value(),
            1u);
  EXPECT_EQ(registry.counter("choreo_sweep_points_total", "").value(), 10u);
  EXPECT_EQ(
      registry.counter("choreo_sweep_point_cache_hits_total", "").value(),
      0u);

  // The same sweep again: every point hits the per-point cache, no
  // derivation happens, and the table is identical.
  const service::JobResult second = scheduler.submit(request).wait();
  ASSERT_EQ(second.status, service::JobStatus::kDone) << second.error;
  ASSERT_TRUE(second.sweep.has_value());
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.attempts, 0u);
  EXPECT_EQ(second.sweep->derivations, 0u);
  EXPECT_EQ(second.sweep->points_from_cache, 10u);
  EXPECT_EQ(registry.counter("choreo_sweep_derivations_total", "").value(),
            1u);
  EXPECT_EQ(
      registry.counter("choreo_sweep_point_cache_hits_total", "").value(),
      10u);
  ASSERT_EQ(second.sweep->rows.size(), first.sweep->rows.size());
  for (std::size_t r = 0; r < first.sweep->rows.size(); ++r) {
    EXPECT_EQ(second.sweep->rows[r].values, first.sweep->rows[r].values);
    EXPECT_EQ(second.sweep->rows[r].measures, first.sweep->rows[r].measures);
  }
  // The CSV bodies match exactly; only the metadata header line differs
  // (derivations=0, points_from_cache=10 on the cached run).
  const std::string first_csv = first.sweep->to_csv();
  const std::string second_csv = second.sweep->to_csv();
  EXPECT_EQ(second_csv.substr(second_csv.find('\n')),
            first_csv.substr(first_csv.find('\n')));
}

TEST(SweepService, OverlappingSweepsSharePointsThroughTheCache) {
  const std::string path =
      write_temp_model("sweep_service_overlap.pepa", tomcat_source(40.0));

  service::Registry registry;
  service::ResultCache cache({.registry = &registry});
  service::SchedulerOptions scheduler_options;
  scheduler_options.workers = 1;
  scheduler_options.cache = &cache;
  scheduler_options.registry = &registry;
  service::Scheduler scheduler(scheduler_options);

  service::JobRequest first_request;
  first_request.sweep.emplace();
  first_request.sweep->model_path = path;
  first_request.sweep->spec.axes = {
      sweep::Axis::list("locs", {10.0, 20.0, 30.0})};
  const service::JobResult first = scheduler.submit(first_request).wait();
  ASSERT_EQ(first.status, service::JobStatus::kDone) << first.error;

  // A different slice of the same design space: the two shared points hit,
  // only the two new ones are evaluated (against one fresh derivation).
  service::JobRequest second_request;
  second_request.sweep.emplace();
  second_request.sweep->model_path = path;
  second_request.sweep->spec.axes = {
      sweep::Axis::list("locs", {20.0, 30.0, 40.0, 50.0})};
  const service::JobResult second = scheduler.submit(second_request).wait();
  ASSERT_EQ(second.status, service::JobStatus::kDone) << second.error;
  ASSERT_TRUE(second.sweep.has_value());
  EXPECT_EQ(second.sweep->points_from_cache, 2u);
  EXPECT_FALSE(second.from_cache);
  EXPECT_EQ(registry.counter("choreo_sweep_derivations_total", "").value(),
            2u);

  // Cached and freshly evaluated rows agree with the first sweep.
  EXPECT_EQ(second.sweep->rows[0].measures, first.sweep->rows[1].measures);
  EXPECT_EQ(second.sweep->rows[1].measures, first.sweep->rows[2].measures);
  for (const sweep::SweepRow& row : second.sweep->rows) {
    ASSERT_TRUE(row.ok()) << row.error;
    EXPECT_EQ(row.measures.size(), second.sweep->measures.size());
  }
}

TEST(SweepService, FluidSweepJobReportsFluidAggregation) {
  const std::string path = write_temp_model(
      "sweep_service_fluid.pepa",
      "r = 1.0; s = 2.0;\n"
      "Think  = (work, r).Wait;\n"
      "Wait   = (reply, infty).Think;\n"
      "Server = (work, infty).Busy;\n"
      "Busy   = (reply, s).Server;\n"
      "System = Think[20] <work, reply> Server[2];\n"
      "@system System;\n");

  service::Registry registry;
  service::SchedulerOptions scheduler_options;
  scheduler_options.workers = 1;
  scheduler_options.registry = &registry;
  service::Scheduler scheduler(scheduler_options);

  service::JobRequest request;
  request.sweep.emplace();
  request.sweep->model_path = path;
  request.sweep->backend = sweep::Backend::kFluid;
  request.sweep->spec.axes = {sweep::Axis::list("r", {0.5, 1.0, 2.0})};
  const service::JobResult result = scheduler.submit(request).wait();
  ASSERT_EQ(result.status, service::JobStatus::kDone) << result.error;
  EXPECT_EQ(result.aggregation_used, chor::Aggregation::kFluid);
  ASSERT_TRUE(result.sweep.has_value());
  EXPECT_EQ(result.sweep->derivations, 0u);
  EXPECT_EQ(registry.counter("choreo_sweep_derivations_total", "").value(),
            0u);
  for (const sweep::SweepRow& row : result.sweep->rows) {
    ASSERT_TRUE(row.ok()) << row.error;
  }
}

TEST(SweepService, SweepJobWritesTheTableToTheOutputPath) {
  const std::string model_path =
      write_temp_model("sweep_service_out.pepa", tomcat_source(40.0));
  const std::string table_path = ::testing::TempDir() + "sweep_table.csv";

  service::Scheduler scheduler({.workers = 1});
  service::JobRequest request;
  request.output_path = table_path;
  request.sweep.emplace();
  request.sweep->model_path = model_path;
  request.sweep->spec.axes = {sweep::Axis::list("locs", {10.0, 40.0})};
  const service::JobResult result = scheduler.submit(request).wait();
  ASSERT_EQ(result.status, service::JobStatus::kDone) << result.error;

  std::ifstream stream(table_path, std::ios::binary);
  ASSERT_TRUE(stream.good());
  std::string line;
  ASSERT_TRUE(std::getline(stream, line));
  EXPECT_EQ(line.find("# structure=0x"), 0u);
}

}  // namespace
