// Integration tests: state-space derivation -> CTMC -> steady state ->
// measures, including the paper's File protocol properties (Section 2.2)
// and the client/server state-diagram measures (Section 5).
#include <gtest/gtest.h>

#include <cmath>

#include "ctmc/steady_state.hpp"
#include "pepa/measures.hpp"
#include "pepa/parser.hpp"
#include "pepa/printer.hpp"
#include "pepa/statespace.hpp"
#include "util/error.hpp"

namespace cp = choreo::pepa;
namespace cc = choreo::ctmc;
namespace cu = choreo::util;

namespace {

std::vector<double> solve(const cp::StateSpace& space) {
  return cc::steady_state(space.generator()).distribution;
}

}  // namespace

TEST(StateSpace, TwoStateToggleMatchesClosedForm) {
  auto model = cp::parse_model("On = (off, 2.0).Off; Off = (on, 3.0).On; @system On;");
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  ASSERT_EQ(space.state_count(), 2u);
  const auto pi = solve(space);
  EXPECT_NEAR(pi[0], 3.0 / 5.0, 1e-10);  // On
  EXPECT_NEAR(pi[1], 2.0 / 5.0, 1e-10);  // Off
}

TEST(StateSpace, FileProtocolStates) {
  // Figure 1 / Section 2.2: File, InStream, OutStream.
  auto model = cp::parse_model(R"(
    File      = (openread, 2.0).InStream + (openwrite, 2.0).OutStream;
    InStream  = (read, 1.8).InStream + (close, 3.0).File;
    OutStream = (write, 1.2).OutStream + (close, 3.0).File;
    @system File;
  )");
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  EXPECT_EQ(space.state_count(), 3u);
  EXPECT_TRUE(space.deadlock_states().empty());

  // "It is not possible to write to a closed file": no write transition
  // leaves the File state, and "read and write operations cannot be
  // interleaved": no state enables both read and write.
  const auto write = *model.arena().find_action("write");
  const auto read = *model.arena().find_action("read");
  const auto file_state = *space.index_of(model.term("File"));
  for (const auto& t : space.transitions()) {
    EXPECT_FALSE(t.source == file_state && t.action == write);
  }
  for (std::size_t s = 0; s < space.state_count(); ++s) {
    bool enables_read = false, enables_write = false;
    for (const auto& t : space.transitions()) {
      if (t.source != s) continue;
      enables_read |= t.action == read;
      enables_write |= t.action == write;
    }
    EXPECT_FALSE(enables_read && enables_write) << "state " << s;
  }
}

TEST(StateSpace, ThroughputBalance) {
  // openread + openwrite throughput must equal close throughput in steady
  // state (every open is eventually closed).
  auto model = cp::parse_model(R"(
    File      = (openread, 2.0).InStream + (openwrite, 2.0).OutStream;
    InStream  = (read, 1.8).InStream + (close, 3.0).File;
    OutStream = (write, 1.2).OutStream + (close, 3.0).File;
    @system File;
  )");
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  const auto pi = solve(space);
  const double opens =
      cp::action_throughput(space, pi, *model.arena().find_action("openread")) +
      cp::action_throughput(space, pi, *model.arena().find_action("openwrite"));
  const double closes =
      cp::action_throughput(space, pi, *model.arena().find_action("close"));
  EXPECT_NEAR(opens, closes, 1e-10);
}

TEST(StateSpace, SharedActionAppearsOnceInCooperation) {
  auto model = cp::parse_model(R"(
    P = (work, 2.0).(sync, 1.0).P;
    Q = (sync, infty).(other, 3.0).Q;
    S = P <sync> Q;
    @system S;
  )");
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  EXPECT_TRUE(space.deadlock_states().empty());
  const auto pi = solve(space);
  const double sync_tp =
      cp::action_throughput(space, pi, *model.arena().find_action("sync"));
  const double work_tp =
      cp::action_throughput(space, pi, *model.arena().find_action("work"));
  const double other_tp =
      cp::action_throughput(space, pi, *model.arena().find_action("other"));
  // One sync per work and one other per sync in the long run.
  EXPECT_NEAR(sync_tp, work_tp, 1e-10);
  EXPECT_NEAR(sync_tp, other_tp, 1e-10);
}

TEST(StateSpace, TopLevelPassiveRejected) {
  auto model = cp::parse_model("P = (a, infty).P; @system P;");
  cp::Semantics semantics(model.arena());
  EXPECT_THROW(cp::StateSpace::derive(semantics, model.system()), cu::ModelError);
}

TEST(StateSpace, TopLevelPassiveDroppedWhenAllowed) {
  auto model = cp::parse_model(
      "P = (a, infty).P + (b, 1.0).P2; P2 = (c, 1.0).P; @system P;");
  cp::Semantics semantics(model.arena());
  cp::DeriveOptions options;
  options.allow_top_level_passive = true;
  const auto space = cp::StateSpace::derive(semantics, model.system(), options);
  EXPECT_EQ(space.state_count(), 2u);
  for (const auto& t : space.transitions()) {
    EXPECT_NE(t.action, *model.arena().find_action("a"));
  }
}

TEST(StateSpace, MaxStatesBoundEnforced) {
  auto model = cp::parse_model(R"(
    P = (a, 1.0).(b, 1.0).(c, 1.0).(d, 1.0).P;
    S = P || P || P || P || P;
    @system S;
  )");
  cp::Semantics semantics(model.arena());
  cp::DeriveOptions options;
  options.max_states = 100;
  EXPECT_THROW(cp::StateSpace::derive(semantics, model.system(), options),
               cu::ModelError);
}

TEST(StateSpace, DeadlockDetected) {
  auto model = cp::parse_model("P = (a, 1.0).Stop; @system P;");
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  EXPECT_EQ(space.deadlock_states().size(), 1u);
}

TEST(StateSpace, ReplicatedClientsGrowCombinatorially) {
  // State-space explosion (paper Section 1.1): N interleaved three-state
  // clients yield 3^N states.
  for (int n : {1, 2, 3, 4}) {
    std::string source = "C = (req, 1.0).(wait, 2.0).(think, 3.0).C;\nS = C";
    for (int i = 1; i < n; ++i) source += " || C";
    source += ";\n@system S;";
    auto model = cp::parse_model(source);
    cp::Semantics semantics(model.arena());
    const auto space = cp::StateSpace::derive(semantics, model.system());
    EXPECT_EQ(space.state_count(), static_cast<std::size_t>(std::pow(3, n)));
  }
}

TEST(Measures, OccupiesFindsSequentialPositions) {
  auto model = cp::parse_model(R"(
    A = (go, 1.0).B;
    B = (back, 1.0).A;
    S = A || B;
    @system S;
  )");
  const auto a = *model.arena().find_constant("A");
  const auto b = *model.arena().find_constant("B");
  const auto s = *model.arena().find_constant("S");
  auto& arena = model.arena();
  const auto term = arena.cooperation(arena.constant(a), {}, arena.constant(b));
  EXPECT_TRUE(cp::occupies(arena, term, a));
  EXPECT_TRUE(cp::occupies(arena, term, b));
  EXPECT_FALSE(cp::occupies(arena, term, s));
}

TEST(Measures, StateProbabilitiesSumOverDiagramStates) {
  // Client state diagram (paper Figure 8): three local states.
  auto model = cp::parse_model(R"(
    GenerateRequest = (request, 2.0).WaitForResponse;
    WaitForResponse = (response, 4.0).ProcessResponse;
    ProcessResponse = (offlineProcessing, 8.0).GenerateRequest;
    @system GenerateRequest;
  )");
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  const auto pi = solve(space);
  double total = 0.0;
  for (const char* name : {"GenerateRequest", "WaitForResponse", "ProcessResponse"}) {
    total += cp::state_probability(space, pi, model.arena(),
                                   *model.arena().find_constant(name));
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
  // Sojourn proportional to 1/rate: P[GenerateRequest] = (1/2)/(1/2+1/4+1/8).
  EXPECT_NEAR(cp::state_probability(space, pi, model.arena(),
                                    *model.arena().find_constant("GenerateRequest")),
              (1.0 / 2.0) / (1.0 / 2.0 + 1.0 / 4.0 + 1.0 / 8.0), 1e-10);
}

TEST(Measures, MeanPopulationCountsReplicas) {
  auto model = cp::parse_model(R"(
    Busy = (rest, 1.0).Idle;
    Idle = (work, 1.0).Busy;
    S = Busy || Busy;
    @system S;
  )");
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  const auto pi = solve(space);
  const auto busy = *model.arena().find_constant("Busy");
  // Symmetric rates: each replica is Busy half the time.
  EXPECT_NEAR(cp::mean_population(space, pi, model.arena(), busy), 1.0, 1e-10);
}

TEST(Measures, AllThroughputsCoverEveryAction) {
  auto model = cp::parse_model(R"(
    P = (a, 1.0).(b, 2.0).P;
    @system P;
  )");
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  const auto pi = solve(space);
  const auto throughputs = cp::all_throughputs(space, pi, model.arena());
  ASSERT_EQ(throughputs.size(), 2u);
  // In a two-phase cycle both activities have equal throughput 1/(1/1+1/2).
  EXPECT_NEAR(throughputs[0].second, 1.0 / 1.5, 1e-10);
  EXPECT_NEAR(throughputs[1].second, 1.0 / 1.5, 1e-10);
}
