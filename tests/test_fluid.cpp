// Tests of the fluid (mean-field ODE) backend: vector-form construction,
// the Dormand-Prince stepper, and the validation ladder of the issue —
// fluid vs the full interleaved CTMC at small N, fluid vs the exact
// population (count-vector) CTMC at N up to 1000, and fluid vs simulation.
#include <gtest/gtest.h>

#include <cmath>

#include "ctmc/steady_state.hpp"
#include "fluid/analysis.hpp"
#include "fluid/ode.hpp"
#include "fluid/population.hpp"
#include "fluid/vector_form.hpp"
#include "pepa/families.hpp"
#include "pepa/measures.hpp"
#include "pepa/statespace.hpp"
#include "sim/engine.hpp"
#include "sim/system.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cf = choreo::fluid;
namespace cp = choreo::pepa;
namespace cc = choreo::ctmc;
namespace cs = choreo::sim;
namespace cu = choreo::util;

namespace {

double throughput_of(const std::vector<std::pair<cp::ActionId, double>>& list,
                     cp::ActionId action) {
  for (const auto& [a, value] : list) {
    if (a == action) return value;
  }
  return 0.0;
}

/// Relative difference with an absolute floor for near-zero references.
double relative_error(double fluid, double exact) {
  return std::abs(fluid - exact) / std::max(std::abs(exact), 1e-12);
}

}  // namespace

TEST(VectorForm, ClientServerGroupsAndDimension) {
  auto model = cp::client_server(100);
  cp::Semantics semantics(model.arena());
  const auto form = cf::VectorForm::build(semantics, model.system());

  // 100 identical clients merge into one counted group; the lone server is
  // its own group.  Two local states each.
  ASSERT_EQ(form.groups().size(), 2u);
  EXPECT_EQ(form.dimension(), 4u);
  EXPECT_DOUBLE_EQ(form.groups()[0].count + form.groups()[1].count, 101.0);

  const auto x0 = form.initial_state();
  double total = 0.0;
  for (double v : x0) total += v;
  EXPECT_DOUBLE_EQ(total, 101.0);

  // Both actions of the model appear in the action table.
  ASSERT_EQ(form.actions().size(), 2u);
}

TEST(VectorForm, FlatCostInPopulation) {
  // The representation is independent of N: a million clients yield the
  // same dimension and transition count as ten.
  auto small = cp::client_server(10);
  auto large = cp::client_server(1'000'000);
  cp::Semantics small_sem(small.arena());
  cp::Semantics large_sem(large.arena());
  const auto small_form = cf::VectorForm::build(small_sem, small.system());
  const auto large_form = cf::VectorForm::build(large_sem, large.system());
  EXPECT_EQ(small_form.dimension(), large_form.dimension());
  EXPECT_EQ(small_form.transitions().size(), large_form.transitions().size());
}

TEST(VectorForm, ConservesMassAndPopulations) {
  auto model = cp::client_server(50, {.servers = 5});
  cp::Semantics semantics(model.arena());
  const auto form = cf::VectorForm::build(semantics, model.system());
  auto x = form.initial_state();
  std::vector<double> dx(form.dimension());
  form.derivative(x, dx);
  // Flows stay within each group: the total derivative vanishes groupwise.
  for (const auto& group : form.groups()) {
    double sum = 0.0;
    for (std::size_t s = 0; s < group.states.size(); ++s) {
      sum += dx[group.first + s];
    }
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
  const auto client = model.arena().find_constant("Client");
  ASSERT_TRUE(client.has_value());
  EXPECT_DOUBLE_EQ(form.population(x, *client), 50.0);
}

TEST(VectorForm, RejectsTopLevelPassive) {
  // A lone client is passive on "response" at the top level.
  cp::Model model;
  auto& arena = model.arena();
  const auto response = arena.action("response");
  const auto client = arena.declare("Client");
  arena.define(client, arena.prefix(response, cp::Rate::passive(),
                                    arena.constant(client)));
  model.add_definition(client);
  cp::Semantics semantics(arena);
  EXPECT_THROW(cf::VectorForm::build(semantics, model.system()),
               cu::ModelError);
  cf::BuildOptions allow;
  allow.allow_top_level_passive = true;
  EXPECT_NO_THROW(cf::VectorForm::build(semantics, model.system(), allow));
}

TEST(Ode, MatchesExponentialDecay) {
  // x' = -x, x(0) = 1: the integrator must track e^-t through dense output
  // and land on the steady state x = 0.
  cf::OdeOptions options;
  options.record_trajectory = true;
  options.steady_tolerance = 1e-10;
  options.rel_tol = 1e-8;
  options.abs_tol = 1e-10;
  const auto solution = cf::integrate(
      [](double, std::span<const double> x, std::span<double> dx) {
        dx[0] = -x[0];
      },
      {1.0}, options);
  EXPECT_TRUE(solution.steady_state_reached());
  EXPECT_GT(solution.stats().steps, 0u);
  for (double t : {0.5, 1.0, 3.0}) {
    if (t >= solution.end_time()) continue;
    EXPECT_NEAR(solution.at(t)[0], std::exp(-t), 1e-5) << "t=" << t;
  }
  EXPECT_NEAR(solution.state()[0], 0.0, 1e-7);
}

TEST(Ode, StepControlRejectsAndRecovers) {
  // A stiff-ish oscillation forces rejections; the solution must still be
  // accurate at the horizon.
  cf::OdeOptions options;
  options.t_end = 10.0;
  options.steady_tolerance = 0.0;  // integrate the full horizon
  options.initial_step = 5.0;      // deliberately too large
  const auto solution = cf::integrate(
      [](double, std::span<const double> x, std::span<double> dx) {
        dx[0] = x[1];
        dx[1] = -25.0 * x[0];
      },
      {1.0, 0.0}, options);
  EXPECT_FALSE(solution.steady_state_reached());
  EXPECT_GT(solution.stats().rejected_steps, 0u);
  EXPECT_NEAR(solution.state()[0], std::cos(5.0 * 10.0), 1e-3);
}

TEST(Ode, BudgetCancellationInterrupts) {
  cu::Budget budget;
  budget.request_cancel();
  cf::OdeOptions options;
  options.budget = &budget;
  options.steady_tolerance = 0.0;
  options.t_end = 1e6;
  EXPECT_THROW(cf::integrate(
                   [](double, std::span<const double> x, std::span<double> dx) {
                     dx[0] = -1e-3 * x[0];
                   },
                   {1.0}, options),
               cu::InterruptedError);
}

TEST(Population, MatchesFullInterleavedChain) {
  // The count-vector chain is an exact lumping: its steady-state
  // throughputs must match the full 2^N interleaving to solver precision.
  auto model = cp::client_server(8, {.servers = 2});
  const auto request = *model.arena().find_action("request");

  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  const auto full = cc::steady_state(space.generator());
  const double full_throughput =
      cp::action_throughput(space, full.distribution, request);

  const auto form = cf::VectorForm::build(semantics, model.system());
  const auto population = cf::derive_population(form);
  EXPECT_LT(population.state_count(), space.state_count());
  const auto lumped = cc::steady_state(population.generator());
  const double lumped_throughput =
      population.action_throughput(lumped.distribution, request);

  EXPECT_NEAR(lumped_throughput, full_throughput, 1e-8);

  const auto client = model.arena().find_constant("Client");
  ASSERT_TRUE(client.has_value());
  EXPECT_NEAR(population.mean_population(lumped.distribution, form, *client),
              cp::mean_population(space, full.distribution, model.arena(),
                                  *client),
              1e-8);
}

TEST(Population, BudgetBoundsExploration) {
  // pda_handover shares only "handover", so searching PDAs queue and the
  // count-vector space is (N+1)(transmitters+1) states — big enough to
  // trip a tiny bound (client_server's lockstep chain never would).
  auto model = cp::pda_handover(100);
  cp::Semantics semantics(model.arena());
  const auto form = cf::VectorForm::build(semantics, model.system());
  cf::PopulationOptions options;
  options.max_states = 16;
  EXPECT_THROW(cf::derive_population(form, options), cu::BudgetError);
}

// The acceptance ladder: fluid vs the exact population chain on the
// client/server (Tomcat-core) and PDA-handover families at N in
// {10, 100, 1000}.  The mean-field approximation error shrinks as N grows;
// the bounds below are the documented tolerances (docs/architecture.md).
class FluidVsExact : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FluidVsExact, ClientServerThroughputAndPopulation) {
  const std::size_t n = GetParam();
  // Tolerance: mean-field error is worst at small N near the saturation
  // point; empirically < 8% at N=10 and shrinking roughly as 1/N.
  const double tolerance = n <= 10 ? 0.08 : (n <= 100 ? 0.02 : 0.005);

  // Scale servers with the clients: the mean-field limit is exact only
  // when every population grows with N.
  auto model = cp::client_server(n, {.servers = n / 5});
  const auto request = *model.arena().find_action("request");
  const auto waiting = *model.arena().find_constant("ClientWaiting");

  cp::Semantics semantics(model.arena());
  const auto form = cf::VectorForm::build(semantics, model.system());
  const auto population = cf::derive_population(form);
  const auto exact = cc::steady_state(population.generator());
  const double exact_throughput =
      population.action_throughput(exact.distribution, request);
  const double exact_waiting =
      population.mean_population(exact.distribution, form, waiting);

  cf::FluidOptions options;
  const auto fluid = cf::solve_steady(semantics, model.system(), options);
  const double fluid_throughput = throughput_of(fluid.throughputs, request);

  EXPECT_LT(relative_error(fluid_throughput, exact_throughput), tolerance)
      << "fluid=" << fluid_throughput << " exact=" << exact_throughput;
  EXPECT_LT(relative_error(fluid.population(waiting), exact_waiting),
            tolerance)
      << "fluid=" << fluid.population(waiting) << " exact=" << exact_waiting;
}

TEST_P(FluidVsExact, PdaHandoverThroughput) {
  const std::size_t n = GetParam();
  const double tolerance = n <= 10 ? 0.08 : (n <= 100 ? 0.02 : 0.005);

  auto model = cp::pda_handover(n, {.transmitters = n / 5});
  const auto handover = *model.arena().find_action("handover");

  cp::Semantics semantics(model.arena());
  const auto form = cf::VectorForm::build(semantics, model.system());
  const auto population = cf::derive_population(form);
  const auto exact = cc::steady_state(population.generator());
  const double exact_throughput =
      population.action_throughput(exact.distribution, handover);

  const auto fluid = cf::solve_steady(semantics, model.system());
  EXPECT_LT(relative_error(throughput_of(fluid.throughputs, handover),
                           exact_throughput),
            tolerance)
      << "fluid=" << throughput_of(fluid.throughputs, handover)
      << " exact=" << exact_throughput;
}

INSTANTIATE_TEST_SUITE_P(Populations, FluidVsExact,
                         ::testing::Values(10u, 100u, 1000u));

TEST(Fluid, AgreesWithSimulation) {
  auto model = cp::client_server(50, {.servers = 5});
  const auto request = *model.arena().find_action("request");

  cp::Semantics semantics(model.arena());
  const auto fluid = cf::solve_steady(semantics, model.system());
  const double fluid_throughput = throughput_of(fluid.throughputs, request);

  cs::PepaSystem system(cp::client_server(50, {.servers = 5}));
  choreo::util::Xoshiro256 rng(42);
  cs::RunOptions run;
  run.warmup_time = 50.0;
  run.horizon = 2000.0;
  const auto result = cs::run_trajectory(system, rng, run);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_LT(relative_error(fluid_throughput, result.throughput(request)),
            0.05)
      << "fluid=" << fluid_throughput
      << " sim=" << result.throughput(request);
}

TEST(Fluid, MillionClientsSolveIsSaturatedAndCheap) {
  // 10^6 clients against one server: the server saturates, so throughput
  // equals its response rate; the solve stays a small ODE.
  cp::ClientServerParams params;
  auto model = cp::client_server(1'000'000, params);
  const auto response = *model.arena().find_action("response");

  cp::Semantics semantics(model.arena());
  const auto fluid = cf::solve_steady(semantics, model.system());
  EXPECT_EQ(fluid.form.dimension(), 4u);
  EXPECT_NEAR(throughput_of(fluid.throughputs, response),
              params.response_rate, params.response_rate * 0.01);
  EXPECT_LT(fluid.stats.steps, 100'000u);
}

TEST(Families, RingStateSpaceIsExponential) {
  auto model = cp::ring(10);
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  // Every on/off combination of the 10 stations is reachable.
  EXPECT_EQ(space.state_count(), 1024u);
}

TEST(Families, RejectEmptyPopulations) {
  EXPECT_THROW(cp::client_server(0), cu::ModelError);
  EXPECT_THROW(cp::pda_handover(0), cu::ModelError);
  EXPECT_THROW(cp::ring(0), cu::ModelError);
}
