// Resource governance inside derive/solve: the util::Budget object, its
// cooperative checkpoints in the BFS and solver loops, and the service
// semantics built on it (mid-derive cancellation, deadline enforcement,
// partial derivation statistics, the interrupted/peak-bytes metrics).
//
// Determinism contract: governance checks sit at level boundaries only, so
// an attached budget must never change a single output byte of an
// uninterrupted run, at any lane count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "choreographer/extract_activity.hpp"
#include "choreographer/extract_statechart.hpp"
#include "choreographer/paper_models.hpp"
#include "choreographer/pipeline.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"
#include "pepa/printer.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "service/metrics.hpp"
#include "service/scheduler.hpp"
#include "uml/xmi.hpp"
#include "util/budget.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "xml/write.hpp"

namespace {

using namespace choreo;

TEST(Budget, CheckPassesOnAFreshBudget) {
  util::Budget budget;
  EXPECT_NO_THROW(budget.check("derive"));
  EXPECT_FALSE(budget.cancel_requested());
  EXPECT_FALSE(budget.deadline_passed());
}

TEST(Budget, CancellationMakesCheckThrowWithStage) {
  util::Budget budget;
  budget.request_cancel();
  EXPECT_TRUE(budget.cancel_requested());
  try {
    budget.check("derive");
    FAIL() << "expected InterruptedError";
  } catch (const util::InterruptedError& error) {
    EXPECT_EQ(error.reason(), util::InterruptedError::Reason::kCancelled);
    EXPECT_EQ(error.stage(), "derive");
    EXPECT_NE(std::string(error.what()).find("cancellation"),
              std::string::npos);
  }
}

TEST(Budget, PastDeadlineMakesCheckThrow) {
  util::Budget budget;
  budget.set_deadline(util::Budget::Clock::now() -
                      std::chrono::milliseconds(1));
  EXPECT_TRUE(budget.deadline_passed());
  try {
    budget.check("solve");
    FAIL() << "expected InterruptedError";
  } catch (const util::InterruptedError& error) {
    EXPECT_EQ(error.reason(), util::InterruptedError::Reason::kDeadline);
    EXPECT_EQ(error.stage(), "solve");
  }
}

TEST(Budget, NonPositiveDeadlineSecondsDisablesTheDeadline) {
  util::Budget budget;
  budget.set_deadline_seconds(-1.0);
  EXPECT_FALSE(budget.deadline_passed());
  budget.set_deadline_seconds(0.0);
  EXPECT_FALSE(budget.deadline_passed());
  budget.set_deadline_seconds(3600.0);
  EXPECT_FALSE(budget.deadline_passed());
  EXPECT_NO_THROW(budget.check("derive"));
}

TEST(Budget, ExhaustedByteBudgetThrowsBudgetError) {
  util::Budget budget;
  budget.set_max_state_bytes(100);
  budget.charge_states(10, 101);
  // BudgetError derives from ModelError so pre-taxonomy catch sites (and
  // the scheduler's retry classifier) keep working.
  EXPECT_THROW(budget.check("derive"), util::BudgetError);
  try {
    budget.check("derive");
    FAIL() << "expected BudgetError";
  } catch (const util::ModelError& error) {
    EXPECT_NE(std::string(error.what()).find("state-space explosion"),
              std::string::npos);
  }
}

TEST(Budget, UsageCountersAccumulate) {
  util::Budget budget;
  budget.charge_states(3, 300);
  budget.charge_states(2, 200);
  budget.release_state_bytes(250);
  budget.note_level(5);
  budget.note_level(9);
  budget.note_level(2);
  budget.charge_solver_iterations(8);
  budget.charge_solver_iterations(8);
  const util::BudgetUsage usage = budget.usage();
  EXPECT_EQ(usage.states, 5u);
  EXPECT_EQ(usage.state_bytes, 250u);
  EXPECT_EQ(usage.peak_state_bytes, 500u);
  EXPECT_EQ(usage.levels, 3u);
  EXPECT_EQ(usage.peak_frontier, 9u);
  EXPECT_EQ(usage.solver_iterations, 16u);
}

TEST(Budget, ConcurrentChargesSumExactly) {
  util::Budget budget;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kCharges = 1000;
  std::vector<std::thread> chargers;
  chargers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    chargers.emplace_back([&] {
      for (std::size_t i = 0; i < kCharges; ++i) {
        budget.charge_states(1, 16);
        budget.note_level(i + 1);
      }
    });
  }
  for (std::thread& charger : chargers) charger.join();
  const util::BudgetUsage usage = budget.usage();
  EXPECT_EQ(usage.states, kThreads * kCharges);
  EXPECT_EQ(usage.state_bytes, kThreads * kCharges * 16);
  EXPECT_EQ(usage.peak_state_bytes, usage.state_bytes);
  EXPECT_EQ(usage.levels, kThreads * kCharges);
  EXPECT_EQ(usage.peak_frontier, kCharges);
}

// ---------------------------------------------------------------------------
// Derivation loops.

pepa::StateSpace derive_tomcat(std::size_t clients,
                               pepa::DeriveOptions options,
                               chor::StatechartExtraction& extraction) {
  chor::TomcatParams params;
  params.clients = clients;
  const uml::Model model = chor::tomcat_model(false, params);
  extraction = chor::extract_state_machines(model);
  pepa::Semantics semantics(extraction.model.arena());
  return pepa::StateSpace::derive(semantics, extraction.model.system(),
                                  options);
}

TEST(BudgetDerive, CancelledBudgetStopsWithinTheFirstLevel) {
  util::Budget budget;
  budget.request_cancel();
  pepa::DeriveOptions options;
  options.budget = &budget;
  chor::StatechartExtraction extraction;
  try {
    derive_tomcat(3, options, extraction);
    FAIL() << "expected InterruptedError";
  } catch (const util::InterruptedError& error) {
    EXPECT_EQ(error.reason(), util::InterruptedError::Reason::kCancelled);
    EXPECT_EQ(error.stage(), "derive");
  }
  // The interruption is observed at a level boundary: the level was noted
  // (so partial statistics exist) but exactly one level was opened.
  const util::BudgetUsage usage = budget.usage();
  EXPECT_EQ(usage.levels, 1u);
  EXPECT_EQ(usage.peak_frontier, 1u);
  EXPECT_GE(usage.states, 1u);  // the initial state was charged
}

TEST(BudgetDerive, PastDeadlineStopsDerivation) {
  util::Budget budget;
  budget.set_deadline(util::Budget::Clock::now() - std::chrono::seconds(1));
  pepa::DeriveOptions options;
  options.budget = &budget;
  chor::StatechartExtraction extraction;
  try {
    derive_tomcat(3, options, extraction);
    FAIL() << "expected InterruptedError";
  } catch (const util::InterruptedError& error) {
    EXPECT_EQ(error.reason(), util::InterruptedError::Reason::kDeadline);
    EXPECT_EQ(error.stage(), "derive");
  }
}

TEST(BudgetDerive, ByteBudgetTripsMidDeriveAsBudgetError) {
  util::Budget budget;
  budget.set_max_state_bytes(200);  // the 68-state space needs far more
  pepa::DeriveOptions options;
  options.budget = &budget;
  chor::StatechartExtraction extraction;
  EXPECT_THROW(derive_tomcat(3, options, extraction), util::BudgetError);
  EXPECT_GT(budget.usage().peak_state_bytes, 200u);
}

TEST(BudgetDerive, MaxStatesAbortChargesEveryAppendedState) {
  // Regression: when the max_states bound trips mid-serial-phase, states
  // already appended in the abandoned level used to go uncharged, so
  // JobHandle::progress() and partial stats under-reported.  The unwind
  // path must charge exactly the states that exist when the error leaves.
  util::Budget budget;
  pepa::DeriveOptions options;
  options.budget = &budget;
  options.max_states = 5;  // the tomcat(3) space has 68 states
  chor::StatechartExtraction extraction;
  EXPECT_THROW(derive_tomcat(3, options, extraction), util::BudgetError);
  const util::BudgetUsage usage = budget.usage();
  EXPECT_EQ(usage.states, 5u);
  EXPECT_GT(usage.state_bytes, 0u);
}

TEST(BudgetDerive, UninterruptedDeriveMirrorsStatsIntoTheBudget) {
  util::Budget budget;
  pepa::DeriveOptions options;
  options.budget = &budget;
  chor::StatechartExtraction extraction;
  const pepa::StateSpace space = derive_tomcat(3, options, extraction);
  const util::BudgetUsage usage = budget.usage();
  EXPECT_EQ(usage.states, space.state_count());
  EXPECT_EQ(usage.levels, space.stats().levels);
  EXPECT_EQ(usage.peak_frontier, space.stats().peak_frontier);
  EXPECT_GT(usage.peak_state_bytes, 0u);
  EXPECT_EQ(usage.state_bytes, usage.peak_state_bytes);
}

TEST(BudgetDerive, NetDerivationHonoursTheBudget) {
  chor::PdaParams params;
  params.transmitters = 4;
  uml::Model model = chor::pda_handover_model(params);
  auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
  pepanet::NetSemantics semantics(extraction.net);

  util::Budget cancelled;
  cancelled.request_cancel();
  pepanet::NetDeriveOptions options;
  options.budget = &cancelled;
  EXPECT_THROW(pepanet::NetStateSpace::derive(semantics, options),
               util::InterruptedError);
  EXPECT_EQ(cancelled.usage().levels, 1u);
  EXPECT_GE(cancelled.usage().states, 1u);

  util::Budget generous;
  pepanet::NetDeriveOptions governed;
  governed.budget = &generous;
  const auto space = pepanet::NetStateSpace::derive(semantics, governed);
  EXPECT_EQ(generous.usage().states, space.marking_count());
  EXPECT_EQ(generous.usage().levels, space.stats().levels);
}

/// Lane-count-independent fingerprint (printed terms + exact transitions).
std::vector<std::string> fingerprint(const pepa::ProcessArena& arena,
                                     const pepa::StateSpace& space) {
  std::vector<std::string> lines;
  lines.reserve(space.state_count() + space.transitions().size());
  for (std::size_t s = 0; s < space.state_count(); ++s) {
    lines.push_back(pepa::to_string(arena, space.state_term(s)));
  }
  for (const pepa::StateTransition& t : space.transitions()) {
    lines.push_back(std::to_string(t.source) + "-" +
                    arena.action_name(t.action) + "@" +
                    std::to_string(t.rate) + "->" + std::to_string(t.target));
  }
  return lines;
}

TEST(BudgetDerive, GovernedDeriveIsIdenticalAtEveryLaneCount) {
  chor::StatechartExtraction ungoverned_extraction;
  const pepa::StateSpace ungoverned =
      derive_tomcat(3, {}, ungoverned_extraction);
  const std::vector<std::string> expected =
      fingerprint(ungoverned_extraction.model.arena(), ungoverned);

  util::ThreadPool pool(4);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::Budget budget;
    budget.set_deadline_seconds(3600.0);
    pepa::DeriveOptions options;
    options.threads = threads;
    options.pool = threads > 1 ? &pool : nullptr;
    options.budget = &budget;
    chor::StatechartExtraction extraction;
    const pepa::StateSpace space = derive_tomcat(3, options, extraction);
    EXPECT_EQ(fingerprint(extraction.model.arena(), space), expected)
        << "lane count " << threads;
  }
}

// ---------------------------------------------------------------------------
// Solver loops.

TEST(BudgetSolve, IterativeSolversObserveCancellation) {
  chor::StatechartExtraction extraction;
  const pepa::StateSpace space = derive_tomcat(3, {}, extraction);
  for (const ctmc::Method method :
       {ctmc::Method::kJacobi, ctmc::Method::kGaussSeidel,
        ctmc::Method::kPower}) {
    util::Budget budget;
    budget.request_cancel();
    ctmc::SolveOptions options;
    options.method = method;
    options.budget = &budget;
    try {
      ctmc::steady_state(space.generator(), options);
      FAIL() << "expected InterruptedError from method "
             << ctmc::method_name(method);
    } catch (const util::InterruptedError& error) {
      EXPECT_EQ(error.stage(), "solve");
    }
    EXPECT_GT(budget.usage().solver_iterations, 0u);
  }
}

TEST(BudgetSolve, GovernedSolveMatchesUngovernedExactly) {
  chor::StatechartExtraction extraction;
  const pepa::StateSpace space = derive_tomcat(3, {}, extraction);
  const auto reference = ctmc::steady_state(space.generator());

  util::Budget budget;
  budget.set_deadline_seconds(3600.0);
  ctmc::SolveOptions options;
  options.budget = &budget;
  const auto governed = ctmc::steady_state(space.generator(), options);
  ASSERT_EQ(governed.distribution.size(), reference.distribution.size());
  for (std::size_t s = 0; s < governed.distribution.size(); ++s) {
    EXPECT_EQ(governed.distribution[s], reference.distribution[s]);
  }
  EXPECT_EQ(governed.iterations, reference.iterations);
}

TEST(BudgetSolve, TransientObservesCancellation) {
  chor::StatechartExtraction extraction;
  const pepa::StateSpace space = derive_tomcat(3, {}, extraction);
  util::Budget budget;
  budget.request_cancel();
  ctmc::TransientOptions options;
  options.budget = &budget;
  EXPECT_THROW(
      ctmc::transient_from_state(space.generator(), 0, 1.0, options),
      util::InterruptedError);
}

// ---------------------------------------------------------------------------
// Pipeline and service.

TEST(BudgetPipeline, CancelledBudgetAbortsAnalyseProject) {
  const xml::Document project = uml::to_xmi(chor::pda_handover_model());
  chor::AnalysisOptions options;
  util::Budget budget;
  budget.request_cancel();
  options.budget = &budget;
  EXPECT_THROW(chor::analyse_project(project, options),
               util::InterruptedError);
}

TEST(BudgetPipeline, AnnotatedBytesIdenticalWithBudgetAttached) {
  const xml::Document project = uml::to_xmi(chor::pda_handover_model());
  const std::string expected =
      xml::to_string(chor::analyse_project(project, {}));

  util::ThreadPool pool(4);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    util::Budget budget;
    budget.set_deadline_seconds(3600.0);
    chor::AnalysisOptions options;
    options.budget = &budget;
    options.derive_threads = threads;
    options.derive_pool = threads > 1 ? &pool : nullptr;
    const xml::Document annotated = chor::analyse_project(project, options);
    EXPECT_EQ(xml::to_string(annotated), expected)
        << "lane count " << threads;
    EXPECT_GT(budget.usage().states, 0u);
  }
}

/// A large state-machine project (~280k joint states at 13 clients): the
/// derivation runs long enough that a client can observably cancel it from
/// the middle of the breadth-first exploration.
service::JobRequest large_tomcat_request() {
  chor::TomcatParams params;
  params.clients = 13;
  service::JobRequest request;
  request.name = "large-tomcat";
  request.project = uml::to_xmi(chor::tomcat_model(false, params));
  return request;
}

TEST(BudgetService, CancelLandsMidDeriveWithPartialStats) {
  service::Registry registry;
  service::SchedulerOptions options;
  options.workers = 1;
  options.registry = &registry;
  service::Scheduler scheduler(options);

  service::JobHandle handle = scheduler.submit(large_tomcat_request());
  // Wait until exploration is demonstrably under way, then cancel: the
  // derive loop must notice at its next level boundary.
  while (handle.progress().states < 1000) {
    ASSERT_FALSE(service::is_terminal(handle.status()))
        << "job finished before cancellation could land";
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  handle.cancel();

  const service::JobResult result = handle.wait();
  EXPECT_EQ(result.status, service::JobStatus::kCancelled);
  EXPECT_EQ(result.error, "cancelled while running");

  // Partial derivation statistics from the budget accounting: exploration
  // got somewhere (>= the 1000 states we waited for) but not to the end.
  EXPECT_GE(result.partial_derive_stats.dedup_misses, 1000u);
  EXPECT_GE(result.partial_derive_stats.levels, 1u);
  EXPECT_GE(result.partial_derive_stats.peak_frontier, 1u);

  // The interruption was observed inside the derive stage, not at a
  // checkpoint, and the peak footprint was exported.
  EXPECT_EQ(
      registry.counter("choreo_jobs_interrupted_in_stage_total", "").value(),
      1u);
  EXPECT_GT(registry.gauge("choreo_budget_peak_state_bytes", "").value(), 0);
}

TEST(BudgetService, DeadlineLandsMidDeriveAsTimedOut) {
  service::SchedulerOptions options;
  options.workers = 1;
  service::Scheduler scheduler(options);

  service::JobRequest request = large_tomcat_request();
  // Far shorter than the ~1s derivation, far longer than the queue hop.
  request.timeout_seconds = 0.05;
  const service::JobResult result =
      scheduler.submit(std::move(request)).wait();
  EXPECT_EQ(result.status, service::JobStatus::kTimedOut);
  EXPECT_EQ(result.error, "deadline passed while running");
  EXPECT_GE(result.partial_derive_stats.dedup_misses, 1u);
  EXPECT_GE(result.partial_derive_stats.levels, 1u);
}

TEST(BudgetService, ProgressIsObservableWhileRunning) {
  service::SchedulerOptions options;
  options.workers = 1;
  service::Scheduler scheduler(options);
  service::JobHandle handle = scheduler.submit(large_tomcat_request());
  util::BudgetUsage snapshot;
  while (snapshot.states < 5000) {
    ASSERT_FALSE(service::is_terminal(handle.status()));
    snapshot = handle.progress();
  }
  EXPECT_GE(snapshot.levels, 1u);
  EXPECT_GT(snapshot.peak_state_bytes, 0u);
  handle.cancel();
  EXPECT_EQ(handle.wait().status, service::JobStatus::kCancelled);
}

}  // namespace
