// Tests for the later extensions: replication arrays in the PEPA syntax,
// absorption probabilities, and simulation-based transient estimation
// (cross-validated against uniformisation).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ctmc/absorption.hpp"
#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"
#include "pepa/parser.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "sim/system.hpp"
#include "sim/transient.hpp"
#include "util/error.hpp"

namespace cp = choreo::pepa;
namespace cc = choreo::ctmc;
namespace cs = choreo::sim;
namespace cu = choreo::util;

TEST(ReplicationArrays, ExpandToParallelCopies) {
  auto arrayed = cp::parse_model(
      "C = (req, 1.0).(wait, 2.0).(think, 3.0).C; S = C[3]; @system S;");
  auto manual = cp::parse_model(
      "C = (req, 1.0).(wait, 2.0).(think, 3.0).C; S = C || C || C; @system S;");
  cp::Semantics semantics_a(arrayed.arena());
  cp::Semantics semantics_m(manual.arena());
  const auto space_a = cp::StateSpace::derive(semantics_a, arrayed.system());
  const auto space_m = cp::StateSpace::derive(semantics_m, manual.system());
  EXPECT_EQ(space_a.state_count(), space_m.state_count());
  EXPECT_EQ(space_a.transitions().size(), space_m.transitions().size());
}

TEST(ReplicationArrays, SingleCopyIsIdentity) {
  auto model = cp::parse_model("P = (a, 1.0).P; S = P[1]; @system S;");
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  EXPECT_EQ(space.state_count(), 1u);
}

TEST(ReplicationArrays, ComposesWithCooperation) {
  auto model = cp::parse_model(R"(
    C = (req, 1.0).(rsp, infty).C;
    Srv = (req, infty).(rsp, 4.0).Srv;
    S = C[2] <req, rsp> Srv;
    @system S;
  )");
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  EXPECT_TRUE(space.deadlock_states().empty());
  EXPECT_GT(space.state_count(), 2u);
}

TEST(ReplicationArrays, RejectsBadCounts) {
  EXPECT_THROW(cp::parse_model("P = (a, 1.0).P; S = P[0];"), cu::ParseError);
  EXPECT_THROW(cp::parse_model("P = (a, 1.0).P; S = P[2.5];"), cu::ParseError);
  EXPECT_THROW(cp::parse_model("P = (a, 1.0).P; S = P[x];"), cu::ParseError);
}

TEST(Absorption, BranchingOutcomeProbabilities) {
  // 0 branches to absorbing 1 (rate a) or 2 (rate b) directly:
  // P[absorbed in 1] = a/(a+b).
  const double a = 1.0, b = 3.0;
  auto g = cc::Generator::build(3, {{0, 1, a}, {0, 2, b}});
  const auto absorption = cc::absorption_probabilities(g);
  ASSERT_EQ(absorption.absorbing, (std::vector<std::size_t>{1, 2}));
  EXPECT_NEAR(absorption.probability(0, 1), a / (a + b), 1e-10);
  EXPECT_NEAR(absorption.probability(0, 2), b / (a + b), 1e-10);
  EXPECT_DOUBLE_EQ(absorption.probability(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(absorption.probability(1, 2), 0.0);
}

TEST(Absorption, GamblersRuinClosedForm) {
  // Symmetric random walk on 0..4 with absorbing ends: starting at i,
  // P[absorbed at 4] = i/4.
  std::vector<cc::RatedTransition> transitions;
  for (std::size_t i = 1; i <= 3; ++i) {
    transitions.push_back({i, i - 1, 1.0});
    transitions.push_back({i, i + 1, 1.0});
  }
  auto g = cc::Generator::build(5, transitions);
  const auto absorption = cc::absorption_probabilities(g);
  for (std::size_t i = 1; i <= 3; ++i) {
    EXPECT_NEAR(absorption.probability(i, 4), static_cast<double>(i) / 4.0,
                1e-9);
    EXPECT_NEAR(absorption.probability(i, 0) + absorption.probability(i, 4),
                1.0, 1e-9);
  }
}

TEST(Absorption, NoAbsorbingStateRejected) {
  auto g = cc::Generator::build(2, {{0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_THROW(cc::absorption_probabilities(g), cu::NumericError);
  EXPECT_THROW(cc::absorption_probabilities(
                   cc::Generator::build(3, {{0, 1, 1.0}, {1, 0, 1.0}}))
                   .probability(0, 1),
               cu::NumericError);
}

TEST(SimTransient, MatchesUniformisation) {
  // P[toggle is On at t] starting from On: closed form
  // pi_On(t) = mu/(l+mu) + l/(l+mu) exp(-(l+mu) t), l=2 (off), mu=3 (on).
  const char* source = "On = (off, 2.0).Off; Off = (on, 3.0).On; @system On;";
  const std::vector<double> times{0.1, 0.3, 0.8, 2.0};
  cs::TransientEstimateOptions options;
  options.replications = 4000;
  options.seed = 99;
  const auto estimates = cs::estimate_transient(
      [&] { return std::make_unique<cs::PepaSystem>(cp::parse_model(source)); },
      [](cs::System& system) {
        return static_cast<cs::PepaSystem&>(system).occupies("On") ? 1.0 : 0.0;
      },
      times, options);
  ASSERT_EQ(estimates.size(), times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double exact = 3.0 / 5.0 + 2.0 / 5.0 * std::exp(-5.0 * times[i]);
    EXPECT_NEAR(estimates[i].mean, exact, 0.03) << times[i];
    EXPECT_TRUE(estimates[i].contains(exact) ||
                std::abs(estimates[i].mean - exact) < 0.03)
        << times[i];
  }
}

TEST(SimTransient, DeadlockFreezesTheState) {
  const char* source = "P = (a, 100.0).Stop; @system P;";
  const auto estimates = cs::estimate_transient(
      [&] { return std::make_unique<cs::PepaSystem>(cp::parse_model(source)); },
      [](cs::System& system) {
        return static_cast<cs::PepaSystem&>(system).occupies("P") ? 1.0 : 0.0;
      },
      {5.0, 50.0});
  // By t=5 virtually every replication has deadlocked in Stop.
  EXPECT_LT(estimates[0].mean, 0.05);
  EXPECT_LT(estimates[1].mean, 0.05);
}
