// Unit tests for the XML substrate: DOM, parser, writer, queries.
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "xml/dom.hpp"
#include "xml/parse.hpp"
#include "xml/query.hpp"
#include "xml/write.hpp"

namespace cx = choreo::xml;
namespace cu = choreo::util;

TEST(Dom, ElementConstructionAndAttributes) {
  cx::Node node = cx::Node::element("UML:Class");
  node.set_attr("name", "File").set_attr("xmi.id", "c1");
  EXPECT_TRUE(node.is_element());
  EXPECT_EQ(node.name(), "UML:Class");
  EXPECT_EQ(node.attr("name"), "File");
  EXPECT_EQ(node.attr_or("missing", "dflt"), "dflt");
  EXPECT_FALSE(node.attr("missing").has_value());
  node.set_attr("name", "File2");  // replace keeps order and arity
  EXPECT_EQ(node.attributes().size(), 2u);
  EXPECT_EQ(node.attr("name"), "File2");
  EXPECT_TRUE(node.remove_attr("xmi.id"));
  EXPECT_FALSE(node.remove_attr("xmi.id"));
}

TEST(Dom, ChildManagementAndTextContent) {
  cx::Node root = cx::Node::element("doc");
  root.add_element("a").add_text("hello ");
  root.add_element("a").add_text("world");
  root.add_element("b");
  root.add_child(cx::Node::comment("ignored"));
  EXPECT_EQ(root.find_children("a").size(), 2u);
  EXPECT_EQ(root.element_children().size(), 3u);
  EXPECT_NE(root.find_child("b"), nullptr);
  EXPECT_EQ(root.find_child("zzz"), nullptr);
  EXPECT_EQ(root.text_content(), "hello world");
  EXPECT_EQ(root.remove_children("a"), 2u);
  EXPECT_EQ(root.element_children().size(), 1u);
}

TEST(Dom, DeepEquals) {
  cx::Node a = cx::Node::element("x");
  a.set_attr("k", "v");
  a.add_element("y").add_text("t");
  cx::Node b = a;
  EXPECT_TRUE(a.deep_equals(b));
  b.find_child("y")->add_text("more");
  EXPECT_FALSE(a.deep_equals(b));
}

TEST(Parse, MinimalDocument) {
  const auto doc = cx::parse_document("<root/>");
  EXPECT_EQ(doc.root().name(), "root");
  EXPECT_TRUE(doc.root().children().empty());
}

TEST(Parse, DeclarationAndNestedElements) {
  const auto doc = cx::parse_document(
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<XMI xmi.version=\"1.2\">\n"
      "  <XMI.content><UML:Model name=\"m\"/></XMI.content>\n"
      "</XMI>");
  ASSERT_EQ(doc.declaration().size(), 2u);
  EXPECT_EQ(doc.declaration()[0].name, "version");
  const cx::Node* content = doc.root().find_child("XMI.content");
  ASSERT_NE(content, nullptr);
  EXPECT_EQ(content->find_child("UML:Model")->attr("name"), "m");
}

TEST(Parse, EntitiesInTextAndAttributes) {
  const auto doc = cx::parse_document(
      "<a name=\"x &lt; y &amp; z\">1 &gt; 0, &quot;q&quot;, &#65;&#x42;</a>");
  EXPECT_EQ(doc.root().attr("name"), "x < y & z");
  EXPECT_EQ(doc.root().text_content(), "1 > 0, \"q\", AB");
}

TEST(Parse, CommentsAndCdata) {
  const auto doc = cx::parse_document(
      "<a><!-- note --><![CDATA[<raw> & stuff]]></a>");
  ASSERT_EQ(doc.root().children().size(), 2u);
  EXPECT_EQ(doc.root().children()[0].kind(), cx::Node::Kind::Comment);
  EXPECT_EQ(doc.root().children()[1].kind(), cx::Node::Kind::CData);
  EXPECT_EQ(doc.root().text_content(), "<raw> & stuff");
}

TEST(Parse, SingleQuotedAttributesAndWhitespaceDropping) {
  const auto doc = cx::parse_document("<a x='1'>\n  <b/>\n</a>");
  EXPECT_EQ(doc.root().attr("x"), "1");
  EXPECT_EQ(doc.root().children().size(), 1u);  // whitespace text dropped
}

TEST(Parse, KeepWhitespaceOption) {
  cx::ParseOptions options;
  options.drop_ignorable_whitespace = false;
  const auto doc = cx::parse_document("<a> <b/> </a>", options);
  EXPECT_EQ(doc.root().children().size(), 3u);
}

TEST(Parse, DoctypeIsSkipped) {
  const auto doc = cx::parse_document(
      "<?xml version=\"1.0\"?><!DOCTYPE x [<!ELEMENT x ANY>]><x/>");
  EXPECT_EQ(doc.root().name(), "x");
}

TEST(Parse, CharReferencesDecodeAcrossUtf8Widths) {
  const auto doc = cx::parse_document(
      "<a>&#65;&#xE9;&#x20AC;&#x1F600;</a>");
  EXPECT_EQ(doc.root().text_content(),
            "A\xC3\xA9\xE2\x82\xAC\xF0\x9F\x98\x80");
}

TEST(Parse, RejectsEmptyCharReferences) {
  // Regression: "&#;" and "&#x;" used to decode to a NUL byte because the
  // empty digit loop left the accumulator at zero.
  EXPECT_THROW(cx::parse_document("<a>&#;</a>"), cu::ParseError);
  EXPECT_THROW(cx::parse_document("<a>&#x;</a>"), cu::ParseError);
  EXPECT_THROW(cx::parse_document("<a>&#X;</a>"), cu::ParseError);
  EXPECT_THROW(cx::parse_document("<a b=\"&#;\"/>"), cu::ParseError);
}

TEST(Parse, RejectsNulCharReference) {
  // Regression: "&#0;" smuggled a NUL byte into text and attribute values.
  EXPECT_THROW(cx::parse_document("<a>&#0;</a>"), cu::ParseError);
  EXPECT_THROW(cx::parse_document("<a>&#x0;</a>"), cu::ParseError);
  EXPECT_THROW(cx::parse_document("<a>&#x000;</a>"), cu::ParseError);
}

TEST(Parse, RejectsSurrogateCharReferences) {
  // Regression: U+D800..U+DFFF were UTF-8-encoded as three bytes, producing
  // ill-formed output (CESU-8-style lone surrogates).
  EXPECT_THROW(cx::parse_document("<a>&#xD800;</a>"), cu::ParseError);
  EXPECT_THROW(cx::parse_document("<a>&#xDFFF;</a>"), cu::ParseError);
  EXPECT_THROW(cx::parse_document("<a>&#55296;</a>"), cu::ParseError);
  // The code points flanking the surrogate block stay legal.
  EXPECT_EQ(cx::parse_document("<a>&#xD7FF;</a>").root().text_content(),
            "\xED\x9F\xBF");
  EXPECT_EQ(cx::parse_document("<a>&#xE000;</a>").root().text_content(),
            "\xEE\x80\x80");
}

TEST(Parse, RejectsOutOfRangeCharReferences) {
  EXPECT_THROW(cx::parse_document("<a>&#x110000;</a>"), cu::ParseError);
  // Regression: enough digits used to wrap the unsigned accumulator; the
  // parser now fails as soon as the value exceeds U+10FFFF.
  EXPECT_THROW(
      cx::parse_document("<a>&#99999999999999999999999999999999;</a>"),
      cu::ParseError);
  EXPECT_THROW(
      cx::parse_document("<a>&#xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF;</a>"),
      cu::ParseError);
  EXPECT_EQ(cx::parse_document("<a>&#x10FFFF;</a>").root().text_content(),
            "\xF4\x8F\xBF\xBF");
}

TEST(Parse, CharReferenceErrorsCarryPositions) {
  try {
    cx::parse_document("<a>\n  <b>&#xD800;</b>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const cu::ParseError& error) {
    EXPECT_NE(std::string(error.what()).find("surrogate"),
              std::string::npos);
  }
}

TEST(Parse, DoctypeQuotedLiteralsDoNotConfuseNesting) {
  // Regression: '>' inside a quoted entity value ended the DOCTYPE early,
  // leaving "]>" to be reported as content before the root element.
  const auto doc = cx::parse_document(
      "<!DOCTYPE m [<!ENTITY e \"a>b\">]><m/>");
  EXPECT_EQ(doc.root().name(), "m");
  const auto single = cx::parse_document(
      "<!DOCTYPE m [<!ENTITY e 'x<y>z'>]><m/>");
  EXPECT_EQ(single.root().name(), "m");
  // A system identifier containing '<' must not raise the bracket depth.
  const auto system_id = cx::parse_document(
      "<!DOCTYPE m SYSTEM \"weird<name>.dtd\"><m/>");
  EXPECT_EQ(system_id.root().name(), "m");
  // An unclosed quote runs off the end: unterminated, not accepted.
  EXPECT_THROW(cx::parse_document("<!DOCTYPE m [<!ENTITY e \"a>]><m/>"),
               cu::ParseError);
}

TEST(Parse, ErrorsCarryPositions) {
  try {
    cx::parse_document("<a>\n  <b></c>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const cu::ParseError& error) {
    EXPECT_EQ(error.line(), 2u);
    EXPECT_NE(std::string(error.what()).find("mismatched end tag"),
              std::string::npos);
  }
}

TEST(Parse, RejectsMalformedInput) {
  EXPECT_THROW(cx::parse_document(""), cu::ParseError);
  EXPECT_THROW(cx::parse_document("<a>"), cu::ParseError);
  EXPECT_THROW(cx::parse_document("<a b></a>"), cu::ParseError);
  EXPECT_THROW(cx::parse_document("<a>&unknown;</a>"), cu::ParseError);
  EXPECT_THROW(cx::parse_document("<a/><b/>"), cu::ParseError);
  EXPECT_THROW(cx::parse_document("<a x=\"1\" x=\"2\"/>"), cu::ParseError);
}

TEST(Write, EscapesSpecials) {
  EXPECT_EQ(cx::escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(cx::escape_attribute("\"x\"\n"), "&quot;x&quot;&#10;");
}

TEST(Write, RoundTripPreservesStructure) {
  const std::string source =
      "<XMI xmi.version=\"1.2\"><XMI.content>"
      "<UML:Model name=\"pda &amp; train\"><UML:Class name=\"PDA\"/>"
      "<note>text &lt;here&gt;</note></UML:Model>"
      "</XMI.content></XMI>";
  const auto doc = cx::parse_document(source);
  const std::string rendered = cx::to_string(doc);
  const auto again = cx::parse_document(rendered);
  EXPECT_TRUE(doc.root().deep_equals(again.root()));
}

TEST(Write, CompactModeIsSingleLine) {
  auto doc = cx::parse_document("<a><b/><c x=\"1\"/></a>");
  cx::WriteOptions options;
  options.indent = 0;
  options.declaration = false;
  EXPECT_EQ(cx::to_string(doc, options), "<a><b/><c x=\"1\"/></a>");
}

TEST(Write, FileRoundTrip) {
  auto doc = cx::parse_document("<m><x v=\"1\"/></m>");
  const std::string path = testing::TempDir() + "/choreo_xml_test.xmi";
  cx::write_file(doc, path);
  const auto loaded = cx::parse_file(path);
  EXPECT_TRUE(doc.root().deep_equals(loaded.root()));
}

TEST(Query, SelectPathAndPredicate) {
  const auto doc = cx::parse_document(
      "<XMI><XMI.content>"
      "<UML:Model><UML:Class name=\"File\"/><UML:Class name=\"PDA\"/>"
      "</UML:Model></XMI.content></XMI>");
  const auto all =
      cx::select_all(doc.root(), "XMI.content/UML:Model/UML:Class");
  ASSERT_EQ(all.size(), 2u);
  const cx::Node* pda = cx::select_first(
      doc.root(), "XMI.content/UML:Model/UML:Class[@name='PDA']");
  ASSERT_NE(pda, nullptr);
  EXPECT_EQ(pda->attr("name"), "PDA");
  EXPECT_EQ(cx::select_first(doc.root(), "nope/nothing"), nullptr);
  EXPECT_THROW(cx::require_first(doc.root(), "nope"), cu::Error);
}

TEST(Query, WildcardStep) {
  const auto doc =
      cx::parse_document("<r><a><x/></a><b><x/><x/></b></r>");
  EXPECT_EQ(cx::select_all(doc.root(), "*/x").size(), 3u);
}

TEST(Query, DescendantsNamed) {
  const auto doc = cx::parse_document(
      "<r><a><deep><tag/></deep></a><tag/><b><tag/></b></r>");
  EXPECT_EQ(cx::descendants_named(doc.root(), "tag").size(), 3u);
}

TEST(Query, MalformedPredicateThrows) {
  const auto doc = cx::parse_document("<r><a/></r>");
  EXPECT_THROW(cx::select_all(doc.root(), "a[@x=unquoted]"), cu::Error);
  EXPECT_THROW(cx::select_all(doc.root(), "a[bad]"), cu::Error);
  EXPECT_THROW(cx::select_all(doc.root(), "a//b"), cu::Error);
}

TEST(Write, CommentsAndCdataRoundTrip) {
  const auto doc = cx::parse_document(
      "<a><!-- keep me --><![CDATA[<raw/>]]><b note=\"x\"/></a>");
  const auto again = cx::parse_document(cx::to_string(doc));
  EXPECT_TRUE(doc.root().deep_equals(again.root()));
  const std::string text = cx::to_string(doc);
  EXPECT_NE(text.find("<!-- keep me -->"), std::string::npos);
  EXPECT_NE(text.find("<![CDATA[<raw/>]]>"), std::string::npos);
}
