// Tests for rate-sensitivity analysis: closed-form elasticities on a
// two-phase cycle, the degree-1 homogeneity property (elasticities sum to
// one), and the PDA case study's bottleneck ranking.
#include <gtest/gtest.h>

#include <numeric>

#include "choreographer/paper_models.hpp"
#include "choreographer/sensitivity.hpp"
#include "util/error.hpp"

namespace chor = choreo::chor;
namespace cm = choreo::uml;
namespace cu = choreo::util;

namespace {

/// A two-stage cyclic activity diagram with rates r1, r2.
cm::Model two_stage(double r1, double r2) {
  cm::Model model("cycle");
  cm::ActivityGraph graph("cycle");
  const auto initial = graph.add_initial();
  const auto first = graph.add_action("first", r1);
  const auto second = graph.add_action("second", r2);
  graph.add_control_flow(initial, first);
  graph.add_control_flow(first, second);
  graph.add_control_flow(second, first);
  const auto obj = graph.add_object("o", "T", "");
  graph.add_object_flow(first, obj, true);
  graph.add_object_flow(second, obj, true);
  model.add_activity_graph(std::move(graph));
  return model;
}

double sum_of_elasticities(const chor::SensitivityReport& report) {
  return std::accumulate(report.entries.begin(), report.entries.end(), 0.0,
                         [](double sum, const chor::SensitivityEntry& entry) {
                           return sum + entry.elasticity;
                         });
}

}  // namespace

TEST(Sensitivity, TwoStageCycleClosedForm) {
  // Cycle throughput T = 1 / (1/r1 + 1/r2); elasticity w.r.t. r1 is
  // (1/r1) / (1/r1 + 1/r2).
  const double r1 = 2.0, r2 = 6.0;
  const auto report = chor::throughput_sensitivity(two_stage(r1, r2), "first");
  EXPECT_NEAR(report.base_value, 1.0 / (1.0 / r1 + 1.0 / r2), 1e-10);
  ASSERT_EQ(report.entries.size(), 2u);
  const double expected_first = (1.0 / r1) / (1.0 / r1 + 1.0 / r2);
  for (const auto& entry : report.entries) {
    const double expected =
        entry.activity == "first" ? expected_first : 1.0 - expected_first;
    EXPECT_NEAR(entry.elasticity, expected, 1e-3) << entry.activity;
  }
  // The slow stage dominates and sorts first.
  EXPECT_EQ(report.entries[0].activity, "first");
}

TEST(Sensitivity, ElasticitiesSumToOne) {
  // Throughput is homogeneous of degree 1 in the full rate vector, so the
  // elasticities over all activities sum to 1 -- on any model.
  const auto cycle = chor::throughput_sensitivity(two_stage(1.0, 3.0), "second");
  EXPECT_NEAR(sum_of_elasticities(cycle), 1.0, 1e-3);

  const auto pda = chor::throughput_sensitivity(chor::pda_handover_model(),
                                                "download_file_1");
  EXPECT_NEAR(sum_of_elasticities(pda), 1.0, 1e-3);
}

TEST(Sensitivity, PdaBottleneckIsTheHandover) {
  // With the default rates the handover (0.5/s) is by far the slowest
  // stage; speeding it up buys the most download throughput.
  const auto report = chor::throughput_sensitivity(chor::pda_handover_model(),
                                                   "download_file_1");
  ASSERT_GE(report.entries.size(), 2u);
  EXPECT_TRUE(report.entries[0].activity == "handover_1" ||
              report.entries[0].activity == "handover_2")
      << report.entries[0].activity;
  EXPECT_GT(report.entries[0].elasticity, 0.2);
}

TEST(Sensitivity, StateMachineTargets) {
  // Tomcat: the uncached server's response throughput is most sensitive to
  // the slowest stage, translate (0.5/s).
  const auto report =
      chor::throughput_sensitivity(chor::tomcat_model(false), "response");
  EXPECT_GT(report.base_value, 0.0);
  EXPECT_EQ(report.entries[0].activity, "translate");
  EXPECT_NEAR(sum_of_elasticities(report), 1.0, 1e-3);
}

TEST(Sensitivity, UnknownTargetRejected) {
  EXPECT_THROW(
      chor::throughput_sensitivity(chor::pda_handover_model(), "no_such"),
      cu::ModelError);
}
