// Unit tests for the UML metamodel, XMI round-trips, and the Figure-4
// layout preprocessor/postprocessor.
#include <gtest/gtest.h>

#include "choreographer/paper_models.hpp"
#include "uml/layout.hpp"
#include "uml/model.hpp"
#include "uml/xmi.hpp"
#include "util/error.hpp"
#include "xml/parse.hpp"
#include "xml/query.hpp"
#include "xml/write.hpp"

namespace cm = choreo::uml;
namespace cx = choreo::xml;
namespace cu = choreo::util;

TEST(TaggedValues, SetGetAndOverwrite) {
  cm::TaggedValues tags;
  EXPECT_FALSE(tags.has("rate"));
  tags.set("rate", "2.0");
  tags.set("atloc", "p1");
  tags.set("rate", "3.0");
  EXPECT_EQ(tags.get("rate"), "3.0");
  EXPECT_EQ(tags.get_or("missing", "x"), "x");
  EXPECT_DOUBLE_EQ(tags.get_double("rate", 0.0), 3.0);
  EXPECT_DOUBLE_EQ(tags.get_double("missing", 7.0), 7.0);
  EXPECT_EQ(tags.items().size(), 2u);
}

TEST(TaggedValues, MalformedNumberThrows) {
  cm::TaggedValues tags;
  tags.set("rate", "fast");
  EXPECT_THROW(tags.get_double("rate", 0.0), cu::ModelError);
}

TEST(ActivityGraph, BuildAndNavigate) {
  cm::ActivityGraph graph("g");
  const auto initial = graph.add_initial();
  const auto a = graph.add_action("work", 2.0);
  const auto d = graph.add_decision("choice");
  const auto b = graph.add_action("rest", 1.0);
  const auto final_node = graph.add_final();
  graph.add_control_flow(initial, a);
  graph.add_control_flow(a, d);
  graph.add_control_flow(d, b);
  graph.add_control_flow(d, final_node);
  const auto obj = graph.add_object("o", "Thing", "here");
  graph.add_object_flow(a, obj, true);

  EXPECT_EQ(graph.initial_node(), initial);
  EXPECT_EQ(graph.successors(d).size(), 2u);
  EXPECT_EQ(graph.predecessors(b).size(), 1u);
  EXPECT_EQ(graph.inputs_of(a).size(), 1u);
  EXPECT_TRUE(graph.outputs_of(a).empty());
  EXPECT_EQ(graph.object_names(), std::vector<std::string>{"o"});
  EXPECT_EQ(graph.find_action("rest"), b);
  EXPECT_FALSE(graph.find_action("nope").has_value());
  EXPECT_EQ(graph.objects()[obj].location(), "here");
  graph.validate();
}

TEST(ActivityGraph, ValidationFailures) {
  {
    cm::ActivityGraph graph("no_initial");
    graph.add_action("a", 1.0);
    EXPECT_THROW(graph.validate(), cu::ModelError);
  }
  {
    cm::ActivityGraph graph("two_initials");
    graph.add_initial();
    graph.add_initial();
    EXPECT_THROW(graph.validate(), cu::ModelError);
  }
  {
    cm::ActivityGraph graph("dup_actions");
    graph.add_initial();
    graph.add_action("x", 1.0);
    graph.add_action("x", 2.0);
    EXPECT_THROW(graph.validate(), cu::ModelError);
  }
  {
    cm::ActivityGraph graph("move_without_objects");
    graph.add_initial();
    graph.add_action("hop", 1.0, /*is_move=*/true);
    EXPECT_THROW(graph.validate(), cu::ModelError);
  }
  {
    cm::ActivityGraph graph("move_without_atloc");
    graph.add_initial();
    const auto hop = graph.add_action("hop", 1.0, /*is_move=*/true);
    const auto o1 = graph.add_object("o", "T", "");
    const auto o2 = graph.add_object("o", "T", "there");
    graph.add_object_flow(hop, o1, true);
    graph.add_object_flow(hop, o2, false);
    EXPECT_THROW(graph.validate(), cu::ModelError);
  }
}

TEST(StateMachine, BuildAndValidate) {
  cm::StateMachine machine("client", "Client");
  const auto a = machine.add_state("A");
  const auto b = machine.add_state("B");
  machine.add_transition(a, b, "go", 2.0);
  machine.add_passive_transition(b, a, "back");
  EXPECT_EQ(machine.initial_state(), a);  // first state by default
  machine.set_initial(b);
  EXPECT_EQ(machine.initial_state(), b);
  EXPECT_EQ(machine.find_state("A"), a);
  EXPECT_TRUE(machine.transitions()[1].passive);
  machine.validate();
}

TEST(StateMachine, ValidationFailures) {
  {
    cm::StateMachine machine("empty");
    EXPECT_THROW(machine.validate(), cu::ModelError);
  }
  {
    cm::StateMachine machine("dup");
    machine.add_state("S");
    machine.add_state("S");
    EXPECT_THROW(machine.validate(), cu::ModelError);
  }
  {
    cm::StateMachine machine("noaction");
    const auto a = machine.add_state("A");
    machine.add_transition(a, a, "", 1.0);
    EXPECT_THROW(machine.validate(), cu::ModelError);
  }
}

TEST(Xmi, ActivityGraphRoundTrip) {
  const cm::Model original = choreo::chor::instant_message_model();
  const cx::Document document = cm::to_xmi(original);
  const cm::Model loaded = cm::from_xmi(document);

  ASSERT_EQ(loaded.activity_graphs().size(), 1u);
  const cm::ActivityGraph& graph = loaded.activity_graphs()[0];
  const cm::ActivityGraph& source = original.activity_graphs()[0];
  EXPECT_EQ(graph.name(), source.name());
  EXPECT_EQ(graph.nodes().size(), source.nodes().size());
  EXPECT_EQ(graph.control_flows().size(), source.control_flows().size());
  EXPECT_EQ(graph.objects().size(), source.objects().size());
  EXPECT_EQ(graph.object_flows().size(), source.object_flows().size());
  const auto transmit = graph.find_action("transmit");
  ASSERT_TRUE(transmit.has_value());
  EXPECT_TRUE(graph.nodes()[*transmit].is_move);
  EXPECT_DOUBLE_EQ(graph.nodes()[*transmit].tags.get_double("rate", 0.0), 0.7);
  EXPECT_EQ(graph.objects()[0].location(), "p1");
}

TEST(Xmi, StateMachineRoundTrip) {
  const cm::Model original = choreo::chor::tomcat_model(false);
  const cx::Document document = cm::to_xmi(original);
  const cm::Model loaded = cm::from_xmi(document);

  ASSERT_EQ(loaded.state_machines().size(), original.state_machines().size());
  const cm::StateMachine& server = loaded.state_machines().back();
  EXPECT_EQ(server.context(), "Server");
  EXPECT_EQ(server.states().size(), 6u);
  EXPECT_EQ(server.initial_state(), *server.find_state("ServerIdle"));
  // The passive request survived the round trip.
  bool found_passive_request = false;
  for (const auto& t : server.transitions()) {
    if (t.action == "request") found_passive_request = t.passive;
  }
  EXPECT_TRUE(found_passive_request);
}

TEST(Xmi, SecondRoundTripIsIdentical) {
  const cm::Model original = choreo::chor::pda_handover_model();
  const cx::Document once = cm::to_xmi(original);
  const cx::Document twice = cm::to_xmi(cm::from_xmi(once));
  EXPECT_TRUE(once.root().deep_equals(twice.root()));
}

TEST(Xmi, RejectsNonXmiDocuments) {
  EXPECT_THROW(cm::from_xmi(cx::parse_document("<html/>")), cu::ModelError);
  EXPECT_THROW(cm::from_xmi(cx::parse_document("<XMI><XMI.content/></XMI>")),
               cu::Error);
}

TEST(Xmi, WeightedPassiveRateRoundTrip) {
  cm::Model model("m");
  cm::StateMachine machine("w", "W");
  const auto a = machine.add_state("A");
  const auto b = machine.add_state("B");
  machine.add_passive_transition(a, b, "in", 2.5);
  machine.add_transition(b, a, "out", 1.0);
  model.add_state_machine(std::move(machine));
  const cm::Model loaded = cm::from_xmi(cm::to_xmi(model));
  const auto& t = loaded.state_machines()[0].transitions()[0];
  EXPECT_TRUE(t.passive);
  EXPECT_DOUBLE_EQ(t.rate, 2.5);
}

TEST(Layout, PreprocessSplitsToolElements) {
  const char* source = R"(
    <XMI xmi.version="1.2">
      <XMI.content><UML:Model name="m"/></XMI.content>
      <Poseidon.layout><node ref="n1" x="10" y="20"/></Poseidon.layout>
      <GentlewareExtras magic="true"/>
    </XMI>)";
  const auto project = cx::parse_document(source);
  const auto split = cm::preprocess(project);
  EXPECT_EQ(split.layout.size(), 2u);
  EXPECT_EQ(split.model.root().children().size(), 1u);
  EXPECT_EQ(split.model.root().children()[0].name(), "XMI.content");
}

TEST(Layout, PostprocessRestoresLayoutByteForByte) {
  const char* source = R"(<XMI xmi.version="1.2"><XMI.content><UML:Model name="m"/></XMI.content><Poseidon.layout><node ref="n1" x="10"/></Poseidon.layout></XMI>)";
  const auto project = cx::parse_document(source);
  const auto split = cm::preprocess(project);
  const auto merged = cm::postprocess(split.model, split.layout);
  // Layout subtree is bit-identical after the round trip.
  const cx::Node* layout = merged.root().find_child("Poseidon.layout");
  ASSERT_NE(layout, nullptr);
  const cx::Node* original_layout = project.root().find_child("Poseidon.layout");
  EXPECT_TRUE(layout->deep_equals(*original_layout));
  EXPECT_TRUE(merged.root().deep_equals(project.root()));
}

TEST(Layout, MetamodelElementPredicate) {
  EXPECT_TRUE(cm::is_metamodel_element(cx::Node::element("XMI.content")));
  EXPECT_TRUE(cm::is_metamodel_element(cx::Node::element("UML:Model")));
  EXPECT_FALSE(cm::is_metamodel_element(cx::Node::element("Poseidon.layout")));
  EXPECT_TRUE(cm::is_metamodel_element(cx::Node::text("hello")));
}
