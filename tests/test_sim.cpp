// Tests for the stochastic simulation engine: trajectory mechanics,
// agreement with exact CTMC solutions (the paper's Section 1.1 comparison),
// and parallel replications with confidence intervals.
#include <gtest/gtest.h>

#include <memory>

#include "choreographer/extract_activity.hpp"
#include "choreographer/paper_models.hpp"
#include "ctmc/steady_state.hpp"
#include "pepa/measures.hpp"
#include "pepa/parser.hpp"
#include "pepa/statespace.hpp"
#include "pepanet/netstatespace.hpp"
#include "sim/batch.hpp"
#include "sim/engine.hpp"
#include "sim/replicate.hpp"
#include "sim/system.hpp"
#include "util/error.hpp"

namespace cs = choreo::sim;
namespace cp = choreo::pepa;
namespace cn = choreo::pepanet;
namespace cc = choreo::ctmc;
namespace cu = choreo::util;
namespace chor = choreo::chor;

namespace {

const char* kToggleModel =
    "On = (off, 2.0).Off; Off = (on, 3.0).On; @system On;";

std::unique_ptr<cs::System> toggle_factory() {
  return std::make_unique<cs::PepaSystem>(cp::parse_model(kToggleModel));
}

}  // namespace

TEST(SimSystem, PepaSystemStepsThroughStates) {
  cs::PepaSystem system(cp::parse_model(kToggleModel));
  const auto& moves = system.enabled();
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_DOUBLE_EQ(moves[0].rate, 2.0);
  EXPECT_EQ(system.label_name(moves[0].label), "off");
  EXPECT_TRUE(system.occupies("On"));
  system.apply(0);
  EXPECT_TRUE(system.occupies("Off"));
  EXPECT_FALSE(system.occupies("On"));
  system.reset();
  EXPECT_TRUE(system.occupies("On"));
}

TEST(SimSystem, PassiveAtTopLevelRejected) {
  cs::PepaSystem system(cp::parse_model("P = (a, infty).P; @system P;"));
  EXPECT_THROW(system.enabled(), cu::ModelError);
}

TEST(SimEngine, ThroughputMatchesExactSolution) {
  // Toggle: exact throughput of 'off' is pi_On * 2 = (3/5)*2 = 1.2.
  auto system = toggle_factory();
  cu::Xoshiro256 rng(99);
  cs::RunOptions options;
  options.warmup_time = 50.0;
  options.horizon = 20000.0;
  const auto result = cs::run_trajectory(*system, rng, options);
  const auto off = *cp::parse_model(kToggleModel).arena().find_action("off");
  EXPECT_NEAR(result.throughput(off), 1.2, 0.05);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_GT(result.steps, 1000u);
}

TEST(SimEngine, StateRewardMatchesOccupancy) {
  auto model = cp::parse_model(kToggleModel);
  cs::PepaSystem system(std::move(model));
  cu::Xoshiro256 rng(7);
  cs::RunOptions options;
  options.warmup_time = 50.0;
  options.horizon = 20000.0;
  options.state_reward = [&system] { return system.occupies("On") ? 1.0 : 0.0; };
  const auto result = cs::run_trajectory(system, rng, options);
  EXPECT_NEAR(result.mean_reward, 0.6, 0.02);  // pi_On = 3/5
}

TEST(SimEngine, DeadlockEndsRun) {
  cs::PepaSystem system(cp::parse_model("P = (a, 5.0).Stop; @system P;"));
  cu::Xoshiro256 rng(3);
  cs::RunOptions options;
  options.horizon = 100.0;
  const auto result = cs::run_trajectory(system, rng, options);
  EXPECT_TRUE(result.deadlocked);
  const auto counts_total = result.steps;
  EXPECT_EQ(counts_total, 1u);
}

TEST(SimEngine, NetSystemSimulatesFirings) {
  auto extraction = chor::extract_activity_graph(
      chor::instant_message_model().activity_graphs()[0]);

  // Exact answer first.
  cn::PepaNet net_copy = std::move(extraction.net);
  cn::NetSemantics semantics(net_copy);
  const auto space = cn::NetStateSpace::derive(semantics);
  const auto pi = cc::steady_state(space.generator()).distribution;
  const auto transmit = *net_copy.arena().find_action("transmit");
  const double exact = cn::action_throughput(space, pi, transmit);

  // Then a simulated trajectory of the same net.
  auto extraction2 = chor::extract_activity_graph(
      chor::instant_message_model().activity_graphs()[0]);
  cs::NetSystem system(std::move(extraction2.net));
  cu::Xoshiro256 rng(11);
  cs::RunOptions options;
  options.warmup_time = 100.0;
  options.horizon = 50000.0;
  const auto result = cs::run_trajectory(system, rng, options);
  const auto transmit2 = *system.net().arena().find_action("transmit");
  EXPECT_NEAR(result.throughput(transmit2), exact, 0.05 * exact + 0.01);
}

TEST(SimReplicate, ConfidenceIntervalCoversExactValue) {
  cs::ReplicateOptions options;
  options.replications = 24;
  options.run.warmup_time = 20.0;
  options.run.horizon = 2000.0;
  options.seed = 1234;
  const auto result = cs::replicate(toggle_factory, options);
  const auto off = *cp::parse_model(kToggleModel).arena().find_action("off");
  const auto interval = result.throughput(off);
  EXPECT_TRUE(interval.contains(1.2))
      << interval.low() << " .. " << interval.high();
  EXPECT_LT(interval.half_width, 0.05);
  EXPECT_EQ(result.deadlocked, 0u);
}

TEST(SimReplicate, SequentialAndParallelAgree) {
  cs::ReplicateOptions sequential;
  sequential.replications = 8;
  sequential.run.horizon = 500.0;
  sequential.seed = 77;
  sequential.parallel = false;
  cs::ReplicateOptions parallel = sequential;
  parallel.parallel = true;
  const auto a = cs::replicate(toggle_factory, sequential);
  const auto b = cs::replicate(toggle_factory, parallel);
  const auto off = *cp::parse_model(kToggleModel).arena().find_action("off");
  // Same seeds, same jump streams: identical estimates.
  EXPECT_DOUBLE_EQ(a.throughput(off).mean, b.throughput(off).mean);
}

TEST(SimReplicate, StateRewardAcrossReplications) {
  cs::ReplicateOptions options;
  options.replications = 12;
  options.run.warmup_time = 20.0;
  options.run.horizon = 2000.0;
  options.state_reward = [](cs::System& system) {
    return static_cast<cs::PepaSystem&>(system).occupies("On") ? 1.0 : 0.0;
  };
  const auto result = cs::replicate(toggle_factory, options);
  EXPECT_TRUE(result.reward.interval.contains(0.6))
      << result.reward.interval.low() << " .. " << result.reward.interval.high();
}

TEST(SimBatchMeans, SingleRunEstimateCoversExact) {
  cs::PepaSystem system(cp::parse_model(kToggleModel));
  cu::Xoshiro256 rng(4242);
  cs::BatchOptions options;
  options.warmup_time = 50.0;
  options.horizon = 40000.0;
  options.batches = 32;
  const auto off = *cp::parse_model(kToggleModel).arena().find_action("off");
  const auto estimate = cs::run_batch_means(
      system, rng, off, [&system] { return system.occupies("On") ? 1.0 : 0.0; },
      options);
  EXPECT_TRUE(estimate.throughput.contains(1.2))
      << estimate.throughput.low() << " .. " << estimate.throughput.high();
  EXPECT_TRUE(estimate.reward.contains(0.6))
      << estimate.reward.low() << " .. " << estimate.reward.high();
  // Mean sojourn of the toggle: pi-weighted 1/exit = .6/2... the
  // event-average sojourn is total time / total events = 1/2.4.
  EXPECT_NEAR(estimate.mean_sojourn.mean, 1.0 / 2.4, 0.02);
  EXPECT_FALSE(estimate.deadlocked);
  EXPECT_GT(estimate.steps, 1000u);
}

TEST(SimBatchMeans, DeadlockIsFlagged) {
  cs::PepaSystem system(cp::parse_model("P = (a, 5.0).Stop; @system P;"));
  cu::Xoshiro256 rng(5);
  cs::BatchOptions options;
  options.warmup_time = 0.0;
  options.horizon = 10.0;
  options.batches = 4;
  const auto a = *cp::parse_model("P = (a, 5.0).Stop; @system P;")
                      .arena()
                      .find_action("a");
  const auto estimate = cs::run_batch_means(system, rng, a, {}, options);
  EXPECT_TRUE(estimate.deadlocked);
}
