// Integration tests pinning the qualitative claims recorded in
// EXPERIMENTS.md: if a change to the libraries flips one of the paper's
// reproduced "shapes", these tests fail even though every unit-level
// behaviour is still locally consistent.
#include <gtest/gtest.h>

#include "choreographer/extract_activity.hpp"
#include "choreographer/extract_statechart.hpp"
#include "choreographer/paper_models.hpp"
#include "choreographer/pipeline.hpp"
#include "ctmc/labelled_lumping.hpp"
#include "ctmc/steady_state.hpp"
#include "pepa/aggregate.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"

namespace chor = choreo::chor;
namespace cp = choreo::pepa;
namespace cn = choreo::pepanet;
namespace cc = choreo::ctmc;

namespace {

double pda_throughput(const chor::PdaParams& params, const char* action) {
  choreo::uml::Model model = chor::pda_handover_model(params);
  const auto report = chor::analyse(model);
  for (const auto& [name, value] : report.activity_graphs[0].throughputs) {
    if (name == action) return value;
  }
  return 0.0;
}

double tomcat_response(bool cached, std::size_t clients) {
  chor::TomcatParams params;
  params.clients = clients;
  choreo::uml::Model model = chor::tomcat_model(cached, params);
  const auto report = chor::analyse(model);
  for (const auto& [name, value] : report.state_machines.at(0).throughputs) {
    if (name == "response") return value;
  }
  return 0.0;
}

}  // namespace

TEST(ExperimentsClaims, E2_TransmitThroughputSaturates) {
  // Monotone increasing in the transmit rate, with diminishing returns.
  std::vector<double> series;
  for (double rate : {0.1, 0.35, 0.7, 2.8, 11.2}) {
    chor::InstantMessageParams params;
    params.transmit_rate = rate;
    choreo::uml::Model model = chor::instant_message_model(params);
    auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
    cn::NetSemantics semantics(extraction.net);
    const auto space = cn::NetStateSpace::derive(semantics);
    const auto pi = cc::steady_state(space.generator()).distribution;
    series.push_back(cn::action_throughput(
        space, pi, *extraction.net.arena().find_action("transmit")));
  }
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i], series[i - 1]);
  }
  // Diminishing returns: the last doubling gains less than the first.
  EXPECT_LT(series[4] - series[3], series[1] - series[0]);
}

TEST(ExperimentsClaims, E3_HandoverRateThrottlesEverything) {
  chor::PdaParams slow, fast;
  slow.handover_rate = 0.125;
  fast.handover_rate = 8.0;
  EXPECT_LT(pda_throughput(slow, "download_file_1") * 3,
            pda_throughput(fast, "download_file_1"));
  // And the 50/50 claim at every sweep point.
  for (double rate : {0.125, 1.0, 8.0}) {
    chor::PdaParams params;
    params.handover_rate = rate;
    EXPECT_NEAR(pda_throughput(params, "continue_download_1"),
                pda_throughput(params, "abort_download_1"), 1e-10);
  }
}

TEST(ExperimentsClaims, E4_CacheWinsAndTheGapWidensWithLoad) {
  const double factor1 = tomcat_response(true, 1) / tomcat_response(false, 1);
  const double factor4 = tomcat_response(true, 4) / tomcat_response(false, 4);
  EXPECT_GT(factor1, 3.0);   // "very profitable"
  EXPECT_GT(factor4, factor1);  // saturation widens the gap
  // The uncached server saturates: throughput barely moves from 2 to 6.
  EXPECT_LT(tomcat_response(false, 6) / tomcat_response(false, 2), 1.1);
}

TEST(ExperimentsClaims, E6_StateSpaceGrowsCombinatorially) {
  auto states_for = [](std::size_t clients) {
    chor::TomcatParams params;
    params.clients = clients;
    auto extraction =
        chor::extract_state_machines(chor::tomcat_model(false, params));
    cp::Semantics semantics(extraction.model.arena());
    return cp::StateSpace::derive(semantics, extraction.model.system())
        .state_count();
  };
  const auto s2 = states_for(2), s4 = states_for(4), s6 = states_for(6);
  // Super-linear growth: each +2 clients multiplies the space by > 4.
  EXPECT_GT(s4, 4 * s2);
  EXPECT_GT(s6, 4 * s4);
}

TEST(ExperimentsClaims, E8_QuotientGrowsLinearlyWhileFullExplodes) {
  auto sizes_for = [](std::size_t clients) {
    chor::TomcatParams params;
    params.clients = clients;
    auto extraction =
        chor::extract_state_machines(chor::tomcat_model(false, params));
    cp::Semantics semantics(extraction.model.arena());
    const auto space =
        cp::StateSpace::derive(semantics, extraction.model.system());
    const auto lumping = cp::aggregate(space);
    return std::make_pair(space.state_count(), lumping.block_count);
  };
  const auto [full3, blocks3] = sizes_for(3);
  const auto [full6, blocks6] = sizes_for(6);
  EXPECT_GT(full6, 10 * full3);          // combinatorial
  EXPECT_LT(blocks6, 3 * blocks3);       // ~linear (population vector)
  EXPECT_LT(blocks6, full6 / 10);        // the quotient is much smaller
}
