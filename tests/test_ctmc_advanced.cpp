// Tests for the advanced CTMC analyses: ordinary lumpability, first-passage
// times (the ipc-style analysis), and PRISM explicit-format export.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "ctmc/labelled_lumping.hpp"
#include "ctmc/lumping.hpp"
#include "ctmc/passage.hpp"
#include "ctmc/prism_export.hpp"
#include "ctmc/steady_state.hpp"
#include "pepa/parser.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "util/error.hpp"

namespace cc = choreo::ctmc;
namespace cp = choreo::pepa;
namespace cu = choreo::util;

namespace {

/// Two independent identical toggles: 4 states, lumpable to 3 (the mixed
/// states On|Off and Off|On are equivalent).
cc::Generator two_toggles(double up, double down) {
  // State encoding: 0 = (On,On), 1 = (On,Off), 2 = (Off,On), 3 = (Off,Off).
  return cc::Generator::build(4, {{0, 1, down},
                                  {0, 2, down},
                                  {1, 0, up},
                                  {1, 3, down},
                                  {2, 0, up},
                                  {2, 3, down},
                                  {3, 1, up},
                                  {3, 2, up}});
}

}  // namespace

TEST(Lumping, SymmetricReplicasCollapse) {
  const auto g = two_toggles(3.0, 2.0);
  const auto lumping = cc::compute_lumping(g);
  EXPECT_EQ(lumping.block_count, 3u);
  EXPECT_EQ(lumping.block_of[1], lumping.block_of[2]);  // mixed states merge
  EXPECT_NE(lumping.block_of[0], lumping.block_of[3]);
  cc::check_lumpable(g, lumping);
}

TEST(Lumping, QuotientSteadyStateMatchesAggregation) {
  const auto g = two_toggles(3.0, 2.0);
  const auto lumping = cc::compute_lumping(g);
  const auto quotient = lumping.quotient(g);
  quotient.validate();

  const auto pi_full = cc::steady_state(g).distribution;
  const auto pi_quotient = cc::steady_state(quotient).distribution;
  const auto aggregated = lumping.aggregate(pi_full);
  ASSERT_EQ(pi_quotient.size(), aggregated.size());
  for (std::size_t b = 0; b < aggregated.size(); ++b) {
    EXPECT_NEAR(pi_quotient[b], aggregated[b], 1e-10);
  }
}

TEST(Lumping, LiftUniformRecoversSymmetricDistribution) {
  const auto g = two_toggles(1.0, 1.0);
  const auto lumping = cc::compute_lumping(g);
  const auto pi_quotient = cc::steady_state(lumping.quotient(g)).distribution;
  const auto lifted = lumping.lift_uniform(pi_quotient, g.state_count());
  const auto pi_full = cc::steady_state(g).distribution;
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_NEAR(lifted[s], pi_full[s], 1e-10);
  }
}

TEST(Lumping, InitialPartitionIsRespected) {
  // Force the mixed states apart: the lumping must refine, never merge.
  const auto g = two_toggles(3.0, 2.0);
  std::vector<std::size_t> initial{0, 1, 2, 0};
  const auto lumping = cc::compute_lumping(g, initial);
  EXPECT_NE(lumping.block_of[1], lumping.block_of[2]);
  EXPECT_EQ(lumping.block_count, 4u);  // splitting 0/3 apart too
}

TEST(Lumping, AsymmetricChainDoesNotLump) {
  auto g = cc::Generator::build(
      3, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 0, 3.0}});
  const auto lumping = cc::compute_lumping(g);
  EXPECT_EQ(lumping.block_count, 3u);  // coarsest lumping is trivial
}

TEST(Lumping, DetectsNonLumpablePartition) {
  const auto g = two_toggles(3.0, 2.0);
  cc::Lumping bad;
  bad.block_of = {0, 0, 1, 1};  // merges (On,On) with (On,Off): not lumpable
  bad.block_count = 2;
  bad.representatives = {0, 2};
  EXPECT_THROW(cc::check_lumpable(g, bad), cu::NumericError);
}

TEST(Lumping, PepaReplicasLumpExponentialGain) {
  // Three interleaved three-state clients: 27 states lump to the
  // population-vector quotient of C(3+2,2) = 10 blocks.
  auto model = cp::parse_model(R"(
    C = (req, 1.0).(wait, 2.0).(think, 3.0).C;
    S = C || C || C;
    @system S;
  )");
  cp::Semantics semantics(model.arena());
  const auto space = cp::StateSpace::derive(semantics, model.system());
  ASSERT_EQ(space.state_count(), 27u);
  const auto lumping = cc::compute_lumping(space.generator());
  EXPECT_EQ(lumping.block_count, 10u);
  const auto pi_full = cc::steady_state(space.generator()).distribution;
  const auto pi_quotient =
      cc::steady_state(lumping.quotient(space.generator())).distribution;
  const auto aggregated = lumping.aggregate(pi_full);
  for (std::size_t b = 0; b < lumping.block_count; ++b) {
    EXPECT_NEAR(pi_quotient[b], aggregated[b], 1e-9);
  }
}

TEST(Passage, TwoStateIsExponential) {
  const double rate = 2.5;
  auto g = cc::Generator::build(2, {{0, 1, rate}, {1, 0, 1.0}});
  EXPECT_NEAR(cc::mean_passage_time(g, 0, {1}), 1.0 / rate, 1e-10);
  // CDF at several points: 1 - exp(-rate t).
  std::vector<double> initial{1.0, 0.0};
  const std::vector<double> times{0.0, 0.1, 0.5, 1.0, 2.0};
  const auto cdf = cc::passage_cdf(g, initial, {1}, times);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(cdf[i], 1.0 - std::exp(-rate * times[i]), 1e-7) << times[i];
  }
}

TEST(Passage, ErlangChainMeanIsSumOfStages) {
  // 0 ->(2) 1 ->(4) 2 ->(8) 3; mean passage 0->3 = 1/2 + 1/4 + 1/8.
  auto g = cc::Generator::build(
      4, {{0, 1, 2.0}, {1, 2, 4.0}, {2, 3, 8.0}, {3, 0, 1.0}});
  EXPECT_NEAR(cc::mean_passage_time(g, 0, {3}), 0.875, 1e-9);
  const auto all = cc::mean_passage_times(g, {3});
  EXPECT_NEAR(all[1], 0.375, 1e-9);
  EXPECT_NEAR(all[2], 0.125, 1e-9);
  EXPECT_DOUBLE_EQ(all[3], 0.0);
}

TEST(Passage, BranchingChainClosedForm) {
  // From 0: to 1 at rate a, to 2 at rate b; from 1 back to 0 at rate c.
  // Mean hitting time of {2}: m0 = 1/(a+b) + a/(a+b) (m1), m1 = 1/c + m0.
  const double a = 1.0, b = 3.0, c = 5.0;
  auto g = cc::Generator::build(3, {{0, 1, a}, {0, 2, b}, {1, 0, c}, {2, 0, 1.0}});
  const double p = a / (a + b);
  const double m0 = (1.0 / (a + b) + p / c) / (1.0 - p);
  EXPECT_NEAR(cc::mean_passage_time(g, 0, {2}), m0, 1e-9);
}

TEST(Passage, UnreachableTargetRejected) {
  auto g = cc::Generator::build(3, {{0, 1, 1.0}, {1, 0, 1.0}, {2, 0, 1.0}});
  EXPECT_THROW(cc::mean_passage_times(g, {2}), cu::NumericError);
  EXPECT_THROW(cc::mean_passage_times(g, {}), cu::NumericError);
}

TEST(Passage, CdfIsMonotoneAndConvergesToOne) {
  auto g = cc::Generator::build(
      4, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 1.5}, {1, 0, 0.5}, {3, 0, 1.0}});
  std::vector<double> initial{1.0, 0.0, 0.0, 0.0};
  const auto cdf = cc::passage_cdf(g, initial, {3}, {0.5, 1.0, 2.0, 5.0, 50.0});
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i] + 1e-12, cdf[i - 1]);
  }
  EXPECT_NEAR(cdf.back(), 1.0, 1e-6);
}

TEST(Passage, PepaResponseTimeOrdering) {
  // Request -> response passage is shorter when the service rate is higher.
  auto passage = [](double service) {
    auto model = cp::parse_model(
        "Idle = (req, 1.0).Busy; Busy = (serve, " +
        std::to_string(service) + ").Idle; @system Idle;");
    cp::Semantics semantics(model.arena());
    const auto space = cp::StateSpace::derive(semantics, model.system());
    const auto busy = *space.index_of(model.term("Busy"));
    const auto idle = *space.index_of(model.term("Idle"));
    return cc::mean_passage_time(space.generator(), busy, {idle});
  };
  EXPECT_GT(passage(1.0), passage(4.0));
  EXPECT_NEAR(passage(2.0), 0.5, 1e-9);
}

TEST(PrismExport, TraFormat) {
  auto g = cc::Generator::build(2, {{0, 1, 2.5}, {1, 0, 1.0}});
  EXPECT_EQ(cc::to_prism_tra(g), "2 2\n0 1 2.5\n1 0 1\n");
}

TEST(PrismExport, StaFormat) {
  auto g = cc::Generator::build(2, {{0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_EQ(cc::to_prism_sta(g), "(s)\n0:(0)\n1:(1)\n");
}

TEST(PrismExport, LabFormatWithDeadlockAndExtras) {
  auto g = cc::Generator::build(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  const std::string lab =
      cc::to_prism_lab(g, 0, {{"target", {1, 2}}});
  EXPECT_EQ(lab,
            "0=\"init\" 1=\"deadlock\" 2=\"target\"\n"
            "0: 0\n"
            "1: 2\n"
            "2: 1 2\n");
}

TEST(PrismExport, WritesAllThreeFiles) {
  auto g = cc::Generator::build(2, {{0, 1, 1.0}, {1, 0, 2.0}});
  const std::string base = testing::TempDir() + "/choreo_prism";
  cc::write_prism_files(g, base, 0);
  for (const char* extension : {".tra", ".sta", ".lab"}) {
    std::ifstream stream(base + extension);
    EXPECT_TRUE(stream.good()) << extension;
  }
}

TEST(Passage, PdfIsExponentialForTwoState) {
  const double rate = 2.5;
  auto g = cc::Generator::build(2, {{0, 1, rate}, {1, 0, 1.0}});
  std::vector<double> initial{1.0, 0.0};
  const std::vector<double> times{0.0, 0.2, 0.5, 1.0};
  const auto pdf = cc::passage_pdf(g, initial, {1}, times);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(pdf[i], rate * std::exp(-rate * times[i]), 1e-7) << times[i];
  }
}

TEST(Passage, PdfIntegratesToCdf) {
  // Trapezoidal integral of the pdf matches the CDF increments.
  auto g = cc::Generator::build(
      4, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 1.5}, {1, 0, 0.5}, {3, 0, 1.0}});
  std::vector<double> initial{1.0, 0.0, 0.0, 0.0};
  std::vector<double> grid;
  for (int i = 0; i <= 200; ++i) grid.push_back(0.05 * i);
  const auto pdf = cc::passage_pdf(g, initial, {3}, grid);
  const auto cdf = cc::passage_cdf(g, initial, {3}, {grid.back()});
  double integral = 0.0;
  for (std::size_t i = 1; i < grid.size(); ++i) {
    integral += 0.5 * (pdf[i] + pdf[i - 1]) * (grid[i] - grid[i - 1]);
  }
  EXPECT_NEAR(integral, cdf[0], 2e-3);
}

TEST(Passage, ErlangPdfPeaksAfterZero) {
  // A 3-stage Erlang passage has f(0) = 0 and a strictly interior mode.
  auto g = cc::Generator::build(
      4, {{0, 1, 2.0}, {1, 2, 2.0}, {2, 3, 2.0}, {3, 0, 1.0}});
  std::vector<double> initial{1.0, 0.0, 0.0, 0.0};
  const std::vector<double> times{0.0, 0.5, 1.0, 4.0};
  const auto pdf = cc::passage_pdf(g, initial, {3}, times);
  EXPECT_NEAR(pdf[0], 0.0, 1e-9);
  EXPECT_GT(pdf[2], pdf[0]);
  EXPECT_GT(pdf[2], pdf[3]);
}

// --- lumping edge cases ----------------------------------------------------
// The boundary inputs the quotient-direct derivation leans on: empty and
// one-state chains, self-loop-only chains (the generator drops diagonal
// mass, the labelled quotient keeps it), idempotence on an already-lumped
// quotient, and the exact witness text of check_lumpable.

TEST(Lumping, EmptyGeneratorLumpsToNothing) {
  const auto g = cc::Generator::build(0, {});
  const auto lumping = cc::compute_lumping(g);
  EXPECT_EQ(lumping.block_count, 0u);
  EXPECT_TRUE(lumping.block_of.empty());
  EXPECT_TRUE(lumping.representatives.empty());
  cc::check_lumpable(g, lumping);  // vacuously lumpable, must not throw

  const auto labelled = cc::compute_labelled_lumping(0, {});
  EXPECT_EQ(labelled.block_count, 0u);
  EXPECT_TRUE(labelled.quotient_transitions.empty());
}

TEST(Lumping, SingleStateIsItsOwnBlock) {
  const auto g = cc::Generator::build(1, {});
  const auto lumping = cc::compute_lumping(g);
  EXPECT_EQ(lumping.block_count, 1u);
  ASSERT_EQ(lumping.block_of.size(), 1u);
  EXPECT_EQ(lumping.block_of[0], 0u);
  ASSERT_EQ(lumping.representatives.size(), 1u);
  EXPECT_EQ(lumping.representatives[0], 0u);
  cc::check_lumpable(g, lumping);

  const auto labelled = cc::compute_labelled_lumping(1, {});
  EXPECT_EQ(labelled.block_count, 1u);
}

TEST(Lumping, SelfLoopOnlyChainCollapsesAndKeepsLabelledLoops) {
  // Two states whose only activity is a self-loop: the bare generator
  // drops the diagonal, so both states have empty signatures and merge.
  const auto g = cc::Generator::build(2, {{0, 0, 2.0}, {1, 1, 2.0}});
  const auto lumping = cc::compute_lumping(g);
  EXPECT_EQ(lumping.block_count, 1u);
  cc::check_lumpable(g, lumping);

  // The labelled quotient must keep the self-loop: it carries throughput
  // even though it never moves the chain.
  const auto labelled = cc::compute_labelled_lumping(
      2, {{0, 0, /*label=*/7, 2.0}, {1, 1, /*label=*/7, 2.0}});
  EXPECT_EQ(labelled.block_count, 1u);
  ASSERT_EQ(labelled.quotient_transitions.size(), 1u);
  EXPECT_EQ(labelled.quotient_transitions[0].source,
            labelled.quotient_transitions[0].target);
  EXPECT_EQ(labelled.quotient_transitions[0].label, 7u);
  EXPECT_NEAR(labelled.quotient_transitions[0].rate, 2.0, 1e-12);
}

TEST(Lumping, IdempotentOnAnAlreadyLumpedQuotient) {
  // Re-lumping the quotient of the coarsest lumping must find nothing
  // further to merge — the coarsest partition is a fixed point.
  const auto g = two_toggles(3.0, 2.0);
  const auto lumping = cc::compute_lumping(g);
  ASSERT_EQ(lumping.block_count, 3u);
  const auto quotient = lumping.quotient(g);
  const auto again = cc::compute_lumping(quotient);
  EXPECT_EQ(again.block_count, lumping.block_count);
  for (std::size_t b = 0; b < again.block_of.size(); ++b) {
    EXPECT_EQ(again.block_of[b], b);  // identity partition on the quotient
  }
}

TEST(Lumping, CheckLumpableNamesTheWitness) {
  // 0 and 1 leave at different rates into {2}; merging them must produce
  // a witness that names the offending state and both rates.
  const auto g = cc::Generator::build(3, {{0, 2, 1.0}, {1, 2, 2.0}});
  cc::Lumping bad;
  bad.block_of = {0, 0, 1};
  bad.block_count = 2;
  bad.representatives = {0, 2};
  try {
    cc::check_lumpable(g, bad);
    FAIL() << "non-lumpable partition accepted";
  } catch (const cu::NumericError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("partition not lumpable: state 1"), std::string::npos)
        << what;
    EXPECT_NE(what.find("representative has"), std::string::npos) << what;
  }
}
