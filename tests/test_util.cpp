// Unit tests for choreo_util: strings, RNG, statistics, thread pool,
// striped map, segmented vector, tables.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/segmented_vector.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/striped_map.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace cu = choreo::util;

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = cu::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmptyFields) {
  const auto parts = cu::split_ws("  alpha \t beta\ngamma  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "alpha");
  EXPECT_EQ(parts[1], "beta");
  EXPECT_EQ(parts[2], "gamma");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(cu::trim("  x y  "), "x y");
  EXPECT_EQ(cu::trim("\t\n"), "");
  EXPECT_EQ(cu::trim(""), "");
}

TEST(Strings, Join) {
  EXPECT_EQ(cu::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(cu::join({}, ","), "");
  EXPECT_EQ(cu::join({"only"}, ","), "only");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(cu::starts_with("UML:Model", "UML:"));
  EXPECT_FALSE(cu::starts_with("UML", "UML:"));
  EXPECT_TRUE(cu::ends_with("file.xmi", ".xmi"));
  EXPECT_FALSE(cu::ends_with("xmi", ".xmi"));
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(cu::is_identifier("openread"));
  EXPECT_TRUE(cu::is_identifier("_x9"));
  EXPECT_FALSE(cu::is_identifier("9x"));
  EXPECT_FALSE(cu::is_identifier(""));
  EXPECT_FALSE(cu::is_identifier("a-b"));
}

TEST(Strings, FormatDoubleRoundTrips) {
  for (double v : {0.5, 2.0, 1e-9, 123456.789, -3.25, 0.1}) {
    const std::string text = cu::format_double(v);
    EXPECT_EQ(std::stod(text), v) << text;
  }
  EXPECT_EQ(cu::format_double(0.0), "0");
  EXPECT_EQ(cu::format_double(2.0), "2");
}

TEST(Strings, FormatDoublePreservesNegativeZero) {
  // Regression: the zero fast path compared with == (under which
  // -0.0 == 0.0) and returned "0", losing the sign.
  EXPECT_EQ(cu::format_double(-0.0), "-0");
  EXPECT_EQ(cu::format_double(0.0), "0");
  EXPECT_TRUE(std::signbit(std::stod(cu::format_double(-0.0))));
}

TEST(Error, MsgConcatenatesPieces) {
  EXPECT_EQ(cu::msg("a", 1, 'b', 2.5), "a1b2.5");
}

TEST(Error, ParseErrorCarriesPosition) {
  cu::ParseError error("model.pepa", 3, 14, "boom");
  EXPECT_EQ(error.artefact(), "model.pepa");
  EXPECT_EQ(error.line(), 3u);
  EXPECT_EQ(error.column(), 14u);
  EXPECT_STREQ(error.what(), "model.pepa:3:14: boom");
}

TEST(Rng, DeterministicFromSeed) {
  cu::Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  cu::Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval) {
  cu::Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  cu::Xoshiro256 rng(11);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, BelowIsUnbiasedAcrossSmallBound) {
  cu::Xoshiro256 rng(13);
  int counts[5] = {0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.below(5)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 5.0, n * 0.01);
}

TEST(Rng, DiscreteFollowsWeights) {
  cu::Xoshiro256 rng(17);
  const double weights[] = {1.0, 3.0, 6.0};
  int counts[3] = {0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.discrete(weights)]++;
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / double(n), 0.6, 0.015);
}

TEST(Rng, JumpYieldsDisjointStream) {
  cu::Xoshiro256 a(42);
  cu::Xoshiro256 b(42);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 4);
}

TEST(Stats, WelfordMeanVariance) {
  cu::RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(Stats, MergeEqualsSingleStream) {
  cu::RunningStats whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i * 0.37) * 10 + i * 0.01;
    whole.add(v);
    (i < 50 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
}

TEST(Stats, ConfidenceIntervalCoversTrueMean) {
  // 95% CI over 200 repetitions of a small-sample mean should cover the
  // true mean roughly 95% of the time.
  cu::Xoshiro256 rng(23);
  int covered = 0;
  const int reps = 400;
  for (int r = 0; r < reps; ++r) {
    cu::RunningStats stats;
    for (int i = 0; i < 20; ++i) stats.add(rng.exponential(1.0));
    if (cu::confidence_interval(stats, 0.95).contains(1.0)) ++covered;
  }
  EXPECT_GT(covered, reps * 0.90);
  EXPECT_LT(covered, reps * 0.99);
}

TEST(Stats, StudentQuantilesMonotone) {
  EXPECT_GT(cu::student_t_quantile(1, 0.95), cu::student_t_quantile(10, 0.95));
  EXPECT_GT(cu::student_t_quantile(10, 0.99), cu::student_t_quantile(10, 0.95));
  EXPECT_DOUBLE_EQ(cu::student_t_quantile(1000, 0.95), 1.960);
  EXPECT_THROW(cu::student_t_quantile(5, 0.5), cu::Error);
}

TEST(Stats, BatchMeansTracksIidMean) {
  cu::Xoshiro256 rng(29);
  cu::BatchMeans batches(16);
  for (int i = 0; i < 50000; ++i) batches.add(rng.exponential(2.0));
  const auto ci = batches.interval(0.95);
  EXPECT_NEAR(ci.mean, 0.5, 0.02);
  EXPECT_GT(batches.completed_batches(), 4u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  cu::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  cu::ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesExceptions) {
  cu::ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t begin, std::size_t) {
                          if (begin == 0) throw cu::Error("boom");
                        }),
      cu::Error);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
  cu::ThreadPool pool(0);
  std::vector<int> hits(10, 0);
  // worker_count may be 0 on a single-core host; parallel_for must still work.
  pool.parallel_for(10, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i]++;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ThreadPool, SubmitReturnsWaitableResult) {
  cu::ThreadPool pool(2);
  auto doubled = pool.submit([] { return 21 * 2; });
  auto thrown = pool.submit([]() -> int { throw cu::Error("boom"); });
  EXPECT_EQ(doubled.get(), 42);
  EXPECT_THROW(thrown.get(), cu::Error);
}

TEST(ThreadPool, SubmitOnZeroWorkerPoolRunsInline) {
  cu::ThreadPool pool(0);
  auto future = pool.submit([] { return std::this_thread::get_id(); });
  EXPECT_EQ(future.get(), std::this_thread::get_id());
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    cu::ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
    }
  }
  EXPECT_EQ(ran.load(), 32);
  for (auto& f : futures) f.get();
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Regression: the waiter used to sleep on its completion latch while its
  // queued chunks sat behind blocked tasks.  With one worker and two outer
  // lanes, both threads used to reach the inner loops' waits while both
  // inner chunks still sat in the queue — progress requires the waiters to
  // help drain the queue.
  cu::ThreadPool pool(1);
  std::atomic<int> inner_total{0};
  pool.parallel_for(2, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      pool.parallel_for(16, [&](std::size_t b, std::size_t e) {
        inner_total.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPool, NestedParallelForDynamicDoesNotDeadlock) {
  cu::ThreadPool pool(1);
  std::atomic<int> inner_total{0};
  pool.parallel_for_dynamic(4, 1, 0, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      pool.parallel_for_dynamic(8, 2, 0, [&](std::size_t b, std::size_t e) {
        inner_total.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPool, ParallelForDynamicCoversRangeExactlyOnce) {
  cu::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_dynamic(1000, 7, 0,
                            [&](std::size_t begin, std::size_t end) {
                              for (std::size_t i = begin; i < end; ++i) {
                                hits[i].fetch_add(1);
                              }
                            });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForDynamicChunksAreGrainSized) {
  cu::ThreadPool pool(2);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_dynamic(100, 8, 0, [&](std::size_t begin, std::size_t end) {
    std::lock_guard lock(mutex);
    chunks.emplace_back(begin, end);
  });
  ASSERT_EQ(chunks.size(), 13u);  // ceil(100 / 8)
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin % 8, 0u);  // boundaries depend only on (count, grain)
    EXPECT_EQ(end, std::min<std::size_t>(begin + 8, 100));
  }
}

TEST(ThreadPool, ParallelForDynamicSingleLaneRunsOnCallingThread) {
  cu::ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> hits(10, 0);  // unsynchronised: single-lane must be inline
  // grain > count collapses to one chunk, hence one (inline) lane.
  pool.parallel_for_dynamic(10, 100, 0, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    for (std::size_t i = begin; i < end; ++i) hits[i]++;
  });
  pool.parallel_for_dynamic(10, 2, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i]++;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 20);
}

TEST(ThreadPool, ParallelForDynamicZeroWorkerPoolRunsInline) {
  cu::ThreadPool pool(0);
  std::vector<int> hits(10, 0);
  pool.parallel_for_dynamic(10, 3, 0, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i]++;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ThreadPool, ParallelForDynamicPropagatesExceptions) {
  cu::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_dynamic(100, 5, 0,
                                         [](std::size_t begin, std::size_t) {
                                           if (begin == 45) {
                                             throw cu::Error("boom");
                                           }
                                         }),
               cu::Error);
}

TEST(StripedMap, MoveConstructionTransfersAndLeavesSourceUsable) {
  cu::StripedMap<int, int> source;
  source.try_emplace(1, 10);
  source.try_emplace(2, 20);

  cu::StripedMap<int, int> moved(std::move(source));
  ASSERT_NE(moved.find(1), nullptr);
  EXPECT_EQ(*moved.find(1), 10);
  EXPECT_EQ(moved.size(), 2u);

  EXPECT_EQ(source.size(), 0u);
  EXPECT_EQ(source.find(1), nullptr);
  source.try_emplace(3, 30);  // the moved-from map must stay usable
  ASSERT_NE(source.find(3), nullptr);
  EXPECT_EQ(*source.find(3), 30);
}

TEST(StripedMap, MoveAssignmentTransfersAndLeavesSourceUsable) {
  cu::StripedMap<int, int> source;
  source.try_emplace(1, 10);
  cu::StripedMap<int, int> target;
  target.try_emplace(9, 90);  // overwritten by the assignment

  target = std::move(source);
  EXPECT_EQ(target.size(), 1u);
  ASSERT_NE(target.find(1), nullptr);
  EXPECT_EQ(*target.find(1), 10);
  EXPECT_EQ(target.find(9), nullptr);

  EXPECT_EQ(source.size(), 0u);
  source.try_emplace(2, 20);
  ASSERT_NE(source.find(2), nullptr);
  EXPECT_EQ(*source.find(2), 20);
}

TEST(StripedMap, FindBatchMatchesScalarFind) {
  cu::StripedMap<int, std::size_t> map;
  for (int k = 0; k < 200; k += 2) {
    map.try_emplace(k, static_cast<std::size_t>(k) * 10);
  }
  // Both sides of the grouping threshold: a large batch (counting sort,
  // one lock per touched stripe) and a small one (scalar fallback).
  for (const std::size_t batch : {std::size_t{256}, std::size_t{4}}) {
    std::vector<int> queries(batch);
    std::vector<const int*> keys(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      queries[i] = static_cast<int>(i);
      keys[i] = &queries[i];
    }
    std::vector<const std::size_t*> found(batch);
    map.find_batch(keys, found);
    for (std::size_t i = 0; i < batch; ++i) {
      const std::size_t* scalar = map.find(queries[i]);
      ASSERT_EQ(found[i], scalar) << "key " << queries[i];
      if (queries[i] % 2 == 0 && queries[i] < 200) {
        ASSERT_NE(found[i], nullptr);
        EXPECT_EQ(*found[i], static_cast<std::size_t>(queries[i]) * 10);
      } else {
        EXPECT_EQ(found[i], nullptr);
      }
    }
  }
}

TEST(StripedMap, TryEmplaceBatchKeepsStoredAndFirstBatchValues) {
  cu::StripedMap<int, std::size_t> map;
  for (int k = 0; k < 10; ++k) {
    map.try_emplace(k, 1000 + static_cast<std::size_t>(k));
  }
  std::vector<int> batch_keys;
  std::vector<std::size_t> batch_values;
  for (int k = 0; k < 64; ++k) {
    batch_keys.push_back(k);
    batch_values.push_back(static_cast<std::size_t>(k));
  }
  batch_keys.push_back(70);  // within-batch duplicate: first wins
  batch_values.push_back(7000);
  batch_keys.push_back(70);
  batch_values.push_back(7001);
  std::vector<const int*> keys;
  for (const int& k : batch_keys) keys.push_back(&k);

  map.try_emplace_batch(keys, batch_values);
  EXPECT_EQ(map.size(), 65u);
  for (int k = 0; k < 64; ++k) {
    ASSERT_NE(map.find(k), nullptr);
    const std::size_t expected = k < 10 ? 1000 + static_cast<std::size_t>(k)
                                        : static_cast<std::size_t>(k);
    EXPECT_EQ(*map.find(k), expected) << "key " << k;
  }
  ASSERT_NE(map.find(70), nullptr);
  EXPECT_EQ(*map.find(70), 7000u);
}

namespace {

struct DtorCounted {
  static std::atomic<int> live;
  std::string payload;  // non-trivially-destructible on purpose

  explicit DtorCounted(std::string p) : payload(std::move(p)) {
    live.fetch_add(1);
  }
  DtorCounted(const DtorCounted& other) : payload(other.payload) {
    live.fetch_add(1);
  }
  DtorCounted(DtorCounted&& other) noexcept
      : payload(std::move(other.payload)) {
    live.fetch_add(1);
  }
  ~DtorCounted() { live.fetch_sub(1); }
};

std::atomic<int> DtorCounted::live{0};

}  // namespace

TEST(SegmentedVector, DestroysElementsSpanningASegmentBoundary) {
  // 1524 elements straddle the first segment boundary (segment 0 holds
  // 2^kFirstSegmentLog2 = 1024 elements), so the destructor must run
  // element destructors in two segments — the second only partially full.
  constexpr std::size_t kCount = 1524;
  static_assert(kCount > std::size_t{1}
                             << cu::SegmentedVector<DtorCounted>::kFirstSegmentLog2);
  {
    cu::SegmentedVector<DtorCounted> vec;
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(vec.push_back(DtorCounted(std::to_string(i))), i);
    }
    EXPECT_EQ(vec.size(), kCount);
    EXPECT_EQ(DtorCounted::live.load(), static_cast<int>(kCount));
    EXPECT_EQ(vec[0].payload, "0");
    EXPECT_EQ(vec[1023].payload, "1023");  // last slot of segment 0
    EXPECT_EQ(vec[1024].payload, "1024");  // first slot of segment 1
    EXPECT_EQ(vec[kCount - 1].payload, std::to_string(kCount - 1));
  }
  EXPECT_EQ(DtorCounted::live.load(), 0);
}

namespace {

// Regression scaffold for the ThreadPool::shared() static-destruction
// contract: this object touches shared() while constructing, so the pool is
// older and its destructor (which joins the workers) runs *after* ours.
// Using the pool from here must therefore be safe.  A violation crashes or
// hangs the test binary at exit, which CTest reports as a failure even
// though every TEST already passed.
struct StaticDestructorAdjacentPoolUser {
  StaticDestructorAdjacentPoolUser() { cu::ThreadPool::shared(); }
  ~StaticDestructorAdjacentPoolUser() {
    std::atomic<int> total{0};
    cu::ThreadPool::shared().parallel_for(
        64, [&](std::size_t begin, std::size_t end) {
          total.fetch_add(static_cast<int>(end - begin));
        });
    if (total.load() != 64) std::abort();
    cu::ThreadPool::shared().submit([] {}).get();
  }
};

}  // namespace

TEST(ThreadPool, SharedSurvivesStaticDestructorAdjacentUse) {
  // The object is constructed on first run and destroyed after main();
  // see StaticDestructorAdjacentPoolUser above.
  static StaticDestructorAdjacentPoolUser user;
  (void)user;
  SUCCEED();
}

TEST(Table, AlignsColumnsAndCountsRows) {
  cu::TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row_values("beta", {2.5});
  EXPECT_EQ(table.row_count(), 2u);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("2.5"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  cu::TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), cu::Error);
}
