// Validates every model file shipped in models/: each must parse, derive a
// deadlock-free state space, and solve; the Tomcat pair must reproduce the
// optimisation factor of the extracted pipeline (cross-checking the
// hand-written PEPA encoding against the UML extraction path).
#include <gtest/gtest.h>

#include <string>

#include "choreographer/paper_models.hpp"
#include "choreographer/pipeline.hpp"
#include "ctmc/steady_state.hpp"
#include "pepa/measures.hpp"
#include "pepa/parser.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "pepanet/net_parser.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "uml/xmi.hpp"
#include "xml/parse.hpp"

#ifndef CHOREO_MODELS_DIR
#error "CHOREO_MODELS_DIR must be defined by the build"
#endif

namespace {

const std::string kModels = CHOREO_MODELS_DIR;

double pepa_throughput(const std::string& path, const char* action) {
  auto model = choreo::pepa::parse_model_file(path);
  choreo::pepa::Semantics semantics(model.arena());
  const auto space =
      choreo::pepa::StateSpace::derive(semantics, model.system());
  EXPECT_TRUE(space.deadlock_states().empty()) << path;
  const auto solved = choreo::ctmc::steady_state(space.generator());
  return choreo::pepa::action_throughput(space, solved.distribution,
                                         *model.arena().find_action(action));
}

}  // namespace

TEST(ModelsDir, FilePepaSolves) {
  const double read = pepa_throughput(kModels + "/file.pepa", "read");
  EXPECT_NEAR(read, 0.5142857142857143, 1e-12);
}

TEST(ModelsDir, InstantMessagePepanetSolves) {
  auto parsed =
      choreo::pepanet::parse_net_file(kModels + "/instant_message.pepanet");
  choreo::pepanet::NetSemantics semantics(parsed.net);
  const auto space = choreo::pepanet::NetStateSpace::derive(semantics);
  EXPECT_TRUE(space.deadlock_markings().empty());
  EXPECT_EQ(space.marking_count(), 6u);
  const auto solved = choreo::ctmc::steady_state(space.generator());
  const double transmit = choreo::pepanet::action_throughput(
      space, solved.distribution, *parsed.net.arena().find_action("transmit"));
  EXPECT_GT(transmit, 0.0);
  EXPECT_LT(transmit, 0.7);
}

TEST(ModelsDir, TomcatPairReproducesExtractedPipeline) {
  // The hand-written PEPA encodings must agree with the extraction path
  // from the UML models, to the last digit.
  const double uncached = pepa_throughput(kModels + "/tomcat.pepa", "response");
  const double cached =
      pepa_throughput(kModels + "/tomcat_cached.pepa", "response");

  auto extracted = [](bool use_cache) {
    choreo::uml::Model model = choreo::chor::tomcat_model(use_cache);
    const auto report = choreo::chor::analyse(model);
    for (const auto& [action, value] : report.state_machines.at(0).throughputs) {
      if (action == "response") return value;
    }
    return 0.0;
  };
  EXPECT_NEAR(uncached, extracted(false), 1e-12);
  EXPECT_NEAR(cached, extracted(true), 1e-12);
  EXPECT_GT(cached / uncached, 3.0);
}

TEST(ModelsDir, PdaProjectAnalysesEndToEnd) {
  const auto report = choreo::chor::analyse_project_file(
      kModels + "/pda_handover.xmi", testing::TempDir() + "/pda_models_out.xmi");
  ASSERT_EQ(report.activity_graphs.size(), 1u);
  EXPECT_EQ(report.activity_graphs[0].marking_count, 10u);
}

TEST(ModelsDir, RatesFileParses) {
  const auto rates = choreo::chor::parse_rates_file(kModels + "/pda.rates");
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0].second, 0.2);
}
