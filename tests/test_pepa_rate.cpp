// Unit tests for the PEPA rate algebra (active / weighted-passive).
#include <gtest/gtest.h>

#include "pepa/rate.hpp"
#include "util/error.hpp"

namespace cp = choreo::pepa;
namespace cu = choreo::util;

TEST(Rate, ActiveConstruction) {
  const auto r = cp::Rate::active(2.5);
  EXPECT_TRUE(r.is_active());
  EXPECT_FALSE(r.is_passive());
  EXPECT_DOUBLE_EQ(r.value(), 2.5);
  EXPECT_EQ(r.to_string(), "2.5");
}

TEST(Rate, PassiveConstruction) {
  const auto top = cp::Rate::passive();
  EXPECT_TRUE(top.is_passive());
  EXPECT_DOUBLE_EQ(top.value(), 1.0);
  EXPECT_EQ(top.to_string(), "infty");
  EXPECT_EQ(cp::Rate::passive(2.0).to_string(), "2*infty");
}

TEST(Rate, RejectsNonPositive) {
  EXPECT_THROW(cp::Rate::active(0.0), cu::ModelError);
  EXPECT_THROW(cp::Rate::active(-1.0), cu::ModelError);
  EXPECT_THROW(cp::Rate::active(std::numeric_limits<double>::infinity()),
               cu::ModelError);
  EXPECT_THROW(cp::Rate::passive(0.0), cu::ModelError);
}

TEST(Rate, ZeroPlaceholderActsAsIdentity) {
  const cp::Rate zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.plus(cp::Rate::active(3.0)).value(), 3.0);
  EXPECT_EQ(cp::Rate::passive(2.0).plus(zero).to_string(), "2*infty");
}

TEST(Rate, SameKindAddition) {
  EXPECT_DOUBLE_EQ(cp::Rate::active(1.0).plus(cp::Rate::active(2.0)).value(), 3.0);
  const auto p = cp::Rate::passive(1.0).plus(cp::Rate::passive(2.5));
  EXPECT_TRUE(p.is_passive());
  EXPECT_DOUBLE_EQ(p.value(), 3.5);
}

TEST(Rate, MixedAdditionIsModelError) {
  EXPECT_THROW(cp::Rate::active(1.0).plus(cp::Rate::passive(), "read"),
               cu::ModelError);
}

TEST(Rate, MinOrdering) {
  // Every active rate is below every passive one.
  EXPECT_DOUBLE_EQ(
      cp::Rate::min(cp::Rate::active(5.0), cp::Rate::passive(1.0)).value(), 5.0);
  EXPECT_TRUE(cp::Rate::min(cp::Rate::active(5.0), cp::Rate::passive(1.0))
                  .is_active());
  EXPECT_DOUBLE_EQ(
      cp::Rate::min(cp::Rate::active(5.0), cp::Rate::active(2.0)).value(), 2.0);
  const auto pp = cp::Rate::min(cp::Rate::passive(3.0), cp::Rate::passive(2.0));
  EXPECT_TRUE(pp.is_passive());
  EXPECT_DOUBLE_EQ(pp.value(), 2.0);
}

TEST(Rate, CooperationBothActiveTakesMinOfApparent) {
  // Single activity on each side: R = min(r1, r2).
  const auto r = cp::cooperation_rate(cp::Rate::active(2.0), cp::Rate::active(2.0),
                                      cp::Rate::active(5.0), cp::Rate::active(5.0));
  EXPECT_TRUE(r.is_active());
  EXPECT_DOUBLE_EQ(r.value(), 2.0);
}

TEST(Rate, CooperationActivePassiveTakesActiveRate) {
  const auto r =
      cp::cooperation_rate(cp::Rate::active(3.0), cp::Rate::active(3.0),
                           cp::Rate::passive(1.0), cp::Rate::passive(1.0));
  EXPECT_TRUE(r.is_active());
  EXPECT_DOUBLE_EQ(r.value(), 3.0);
}

TEST(Rate, CooperationSplitsByWeights) {
  // Passive side offers two alternatives with weights 1 and 3; the chosen
  // one (weight 1) gets a quarter of the active capacity.
  const auto r =
      cp::cooperation_rate(cp::Rate::active(8.0), cp::Rate::active(8.0),
                           cp::Rate::passive(1.0), cp::Rate::passive(4.0));
  EXPECT_DOUBLE_EQ(r.value(), 2.0);
}

TEST(Rate, CooperationBothPassiveStaysPassive) {
  const auto r =
      cp::cooperation_rate(cp::Rate::passive(1.0), cp::Rate::passive(2.0),
                           cp::Rate::passive(3.0), cp::Rate::passive(3.0));
  EXPECT_TRUE(r.is_passive());
  EXPECT_DOUBLE_EQ(r.value(), 0.5 * 1.0 * 2.0);
}

TEST(Rate, CooperationApparentRateLaw) {
  // Two activities of rate r on the left (apparent 2r) against one of rate
  // s < 2r on the right: each pair gets (r/2r) * s = s/2, totalling s.
  const auto pair_rate =
      cp::cooperation_rate(cp::Rate::active(3.0), cp::Rate::active(6.0),
                           cp::Rate::active(4.0), cp::Rate::active(4.0));
  EXPECT_DOUBLE_EQ(pair_rate.value(), 2.0);
}

TEST(Rate, EqualityComparesKindAndValue) {
  EXPECT_EQ(cp::Rate::active(2.0), cp::Rate::active(2.0));
  EXPECT_FALSE(cp::Rate::active(2.0) == cp::Rate::passive(2.0));
  EXPECT_FALSE(cp::Rate::active(2.0) == cp::Rate::active(3.0));
}
