// Unit tests for the service metrics registry: counters, gauges,
// fixed-bucket histograms and the Prometheus text exposition.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "service/metrics.hpp"
#include "util/error.hpp"

namespace cs = choreo::service;

TEST(Metrics, CounterAccumulates) {
  cs::Registry registry;
  cs::Counter& counter = registry.counter("jobs_total", "jobs");
  counter.increment();
  counter.increment(41);
  EXPECT_EQ(counter.value(), 42u);
  // Lookup is idempotent: same name, same object.
  EXPECT_EQ(&registry.counter("jobs_total", "jobs"), &counter);
}

TEST(Metrics, GaugeMovesBothWays) {
  cs::Registry registry;
  cs::Gauge& gauge = registry.gauge("queue_depth", "depth");
  gauge.set(10);
  gauge.add(-3);
  EXPECT_EQ(gauge.value(), 7);
}

TEST(Metrics, KindMismatchThrows) {
  cs::Registry registry;
  registry.counter("metric", "");
  EXPECT_THROW(registry.gauge("metric", ""), choreo::util::Error);
  EXPECT_THROW(registry.histogram("metric", ""), choreo::util::Error);
}

TEST(Metrics, HistogramBucketsAndSum) {
  cs::Histogram histogram({0.1, 1.0, 10.0});
  histogram.observe(0.05);   // bucket 0 (<= 0.1)
  histogram.observe(0.1);    // bucket 0 (le is inclusive)
  histogram.observe(0.5);    // bucket 1
  histogram.observe(100.0);  // +Inf bucket
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 100.65);
  EXPECT_EQ(histogram.bucket_count(0), 2u);
  EXPECT_EQ(histogram.bucket_count(1), 1u);
  EXPECT_EQ(histogram.bucket_count(2), 0u);
  EXPECT_EQ(histogram.bucket_count(3), 1u);
}

TEST(Metrics, HistogramQuantileInterpolates) {
  cs::Histogram histogram({1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) histogram.observe(1.5);  // all in (1, 2]
  const double median = histogram.quantile(0.5);
  EXPECT_GE(median, 1.0);
  EXPECT_LE(median, 2.0);
  EXPECT_DOUBLE_EQ(cs::Histogram({1.0}).quantile(0.5), 0.0);  // empty
}

TEST(Metrics, HistogramQuantileOrdering) {
  cs::Histogram histogram(cs::Histogram::default_latency_bounds());
  for (int i = 1; i <= 1000; ++i) histogram.observe(i * 1e-4);  // 0.1ms..100ms
  EXPECT_LE(histogram.quantile(0.5), histogram.quantile(0.99));
  EXPECT_GT(histogram.quantile(0.99), 0.0);
}

TEST(Metrics, ConcurrentUpdatesAreLossless) {
  cs::Registry registry;
  cs::Counter& counter = registry.counter("hits", "");
  cs::Histogram& histogram = registry.histogram("latency", "");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        counter.increment();
        histogram.observe(0.001);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), 40000u);
  EXPECT_EQ(histogram.count(), 40000u);
}

TEST(Metrics, ExpositionFollowsPrometheusTextFormat) {
  cs::Registry registry;
  registry.counter("choreo_jobs_done_total", "Jobs finished").increment(3);
  registry.gauge("choreo_queue_depth", "Queue depth").set(2);
  registry.histogram("choreo_job_seconds", "Latency", {0.5, 1.0})
      .observe(0.25);
  const std::string text = registry.exposition();
  EXPECT_NE(text.find("# TYPE choreo_jobs_done_total counter\n"
                      "choreo_jobs_done_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE choreo_queue_depth gauge\n"
                      "choreo_queue_depth 2\n"),
            std::string::npos);
  // Histogram buckets are cumulative and end with +Inf, _sum, _count.
  EXPECT_NE(text.find("choreo_job_seconds_bucket{le=\"0.5\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("choreo_job_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("choreo_job_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("choreo_job_seconds_sum 0.25"), std::string::npos);
  EXPECT_NE(text.find("choreo_job_seconds_count 1"), std::string::npos);
  // HELP lines precede their TYPE lines.
  EXPECT_LT(text.find("# HELP choreo_job_seconds"),
            text.find("# TYPE choreo_job_seconds"));
}

TEST(Metrics, SnapshotIsNameOrderedAndComplete) {
  cs::Registry registry;
  registry.gauge("b_gauge", "").set(5);
  registry.counter("a_counter", "").increment(7);
  const auto samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "a_counter");
  EXPECT_DOUBLE_EQ(samples[0].value, 7.0);
  EXPECT_EQ(samples[1].name, "b_gauge");
  EXPECT_DOUBLE_EQ(samples[1].value, 5.0);
}
