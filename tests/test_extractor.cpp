// Integration tests for the Section-3 extractor: activity diagrams to PEPA
// nets on the paper's case studies, the state-machine extractor, the DOM
// extraction path, .rates files, and the reflector.
#include <gtest/gtest.h>

#include "choreographer/dom_extract.hpp"
#include "choreographer/extract_activity.hpp"
#include "choreographer/extract_statechart.hpp"
#include "choreographer/names.hpp"
#include "choreographer/paper_models.hpp"
#include "choreographer/rates.hpp"
#include "choreographer/reflect.hpp"
#include "ctmc/steady_state.hpp"
#include "pepa/measures.hpp"
#include "pepa/printer.hpp"
#include "pepa/semantics.hpp"
#include "pepa/statespace.hpp"
#include "pepanet/net_printer.hpp"
#include "pepanet/netsemantics.hpp"
#include "pepanet/netstatespace.hpp"
#include "uml/xmi.hpp"
#include "util/error.hpp"

namespace chor = choreo::chor;
namespace cm = choreo::uml;
namespace cp = choreo::pepa;
namespace cn = choreo::pepanet;
namespace cc = choreo::ctmc;
namespace cu = choreo::util;

TEST(Names, Sanitisation) {
  EXPECT_EQ(chor::sanitise_identifier("download file"), "download_file");
  EXPECT_EQ(chor::sanitise_identifier("9lives"), "_9lives");
  EXPECT_EQ(chor::sanitise_identifier(""), "_");
  EXPECT_EQ(chor::sanitise_identifier("ok_name2"), "ok_name2");
}

TEST(Names, PoolUniquifies) {
  chor::NamePool pool;
  EXPECT_EQ(pool.unique("a b"), "a_b");
  EXPECT_EQ(pool.unique("a_b"), "a_b_2");
  EXPECT_EQ(pool.unique("a b"), "a_b_3");
}

TEST(ExtractActivity, InstantMessageMapping) {
  // The Section-3 mapping on Figure 2: two locations -> two places, two
  // moves -> two net transitions, one object -> one token type.
  const cm::Model model = chor::instant_message_model();
  const auto extraction =
      chor::extract_activity_graph(model.activity_graphs()[0]);
  EXPECT_EQ(extraction.net.place_count(), 2u);
  EXPECT_EQ(extraction.net.transition_count(), 2u);
  EXPECT_EQ(extraction.net.token_type_count(), 1u);
  EXPECT_EQ(extraction.place_names, (std::vector<std::string>{"p1", "p2"}));
  ASSERT_EQ(extraction.tokens.size(), 1u);
  EXPECT_EQ(extraction.tokens[0].first, "f");
  // The transmit firing goes p1 -> p2, archive goes p2 -> p1.
  const auto& transmit = extraction.net.transition(0);
  EXPECT_EQ(transmit.name, "transmit");
  EXPECT_EQ(extraction.net.place(transmit.inputs[0]).name, "p1");
  EXPECT_EQ(extraction.net.place(transmit.outputs[0]).name, "p2");
  EXPECT_DOUBLE_EQ(transmit.rate.value(), 0.7);
}

TEST(ExtractActivity, InstantMessageSteadyState) {
  const cm::Model model = chor::instant_message_model();
  auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
  cn::NetSemantics semantics(extraction.net);
  const auto space = cn::NetStateSpace::derive(semantics);
  EXPECT_TRUE(space.deadlock_markings().empty());
  const auto pi = cc::steady_state(space.generator()).distribution;
  const auto transmit = *extraction.net.arena().find_action("transmit");
  const auto archive = *extraction.net.arena().find_action("archive");
  const auto write = *extraction.net.arena().find_action("write");
  // One transmit per archive per write per cycle.
  EXPECT_NEAR(cn::action_throughput(space, pi, transmit),
              cn::action_throughput(space, pi, archive), 1e-10);
  EXPECT_NEAR(cn::action_throughput(space, pi, transmit),
              cn::action_throughput(space, pi, write), 1e-10);
  // The cycle rate is bounded by its slowest stage (transmit at 0.7).
  EXPECT_LT(cn::action_throughput(space, pi, transmit), 0.7);
}

TEST(ExtractActivity, FileDiagramWithoutMobility) {
  // Figure 1: no atloc tags -> a single implicit place, no firings.
  const cm::Model model = chor::file_activity_model();
  auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
  EXPECT_EQ(extraction.net.place_count(), 1u);
  EXPECT_EQ(extraction.net.transition_count(), 0u);
  EXPECT_EQ(extraction.place_names, std::vector<std::string>{"main"});

  cn::NetSemantics semantics(extraction.net);
  const auto space = cn::NetStateSpace::derive(semantics);
  EXPECT_TRUE(space.deadlock_markings().empty());
  const auto pi = cc::steady_state(space.generator()).distribution;
  // Protocol invariants: every open is closed, reads and writes balance
  // with their respective opens.
  const auto openread = *extraction.net.arena().find_action("openread");
  const auto openwrite = *extraction.net.arena().find_action("openwrite");
  const auto close_r = *extraction.net.arena().find_action("close_after_read");
  const auto close_w = *extraction.net.arena().find_action("close_after_write");
  EXPECT_NEAR(cn::action_throughput(space, pi, openread),
              cn::action_throughput(space, pi, close_r), 1e-10);
  EXPECT_NEAR(cn::action_throughput(space, pi, openwrite),
              cn::action_throughput(space, pi, close_w), 1e-10);
}

TEST(ExtractActivity, PdaHandoverMapping) {
  const cm::Model model = chor::pda_handover_model();
  auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
  EXPECT_EQ(extraction.net.place_count(), 2u);  // two transmitters
  EXPECT_EQ(extraction.net.transition_count(), 2u);  // handover_1, handover_2
  cn::NetSemantics semantics(extraction.net);
  const auto space = cn::NetStateSpace::derive(semantics);
  EXPECT_TRUE(space.deadlock_markings().empty());

  const auto pi = cc::steady_state(space.generator()).distribution;
  const auto& arena = extraction.net.arena();
  // 50/50 handover outcome: continue and abort throughputs are equal.
  const double cont = cn::action_throughput(
      space, pi, *arena.find_action("continue_download_1"));
  const double abort = cn::action_throughput(
      space, pi, *arena.find_action("abort_download_1"));
  EXPECT_NEAR(cont, abort, 1e-10);
  // Ring symmetry: both handovers have the same throughput, and each cycle
  // stage completes once per handover.
  const double h1 =
      cn::action_throughput(space, pi, *arena.find_action("handover_1"));
  const double h2 =
      cn::action_throughput(space, pi, *arena.find_action("handover_2"));
  EXPECT_NEAR(h1, h2, 1e-10);
  EXPECT_NEAR(cont + abort, h1, 1e-10);
}

TEST(ExtractActivity, PdaRingScalesWithTransmitters) {
  for (std::size_t n : {2u, 3u, 5u}) {
    chor::PdaParams params;
    params.transmitters = n;
    const cm::Model model = chor::pda_handover_model(params);
    auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
    EXPECT_EQ(extraction.net.place_count(), n);
    EXPECT_EQ(extraction.net.transition_count(), n);
    cn::NetSemantics semantics(extraction.net);
    const auto space = cn::NetStateSpace::derive(semantics);
    EXPECT_TRUE(space.deadlock_markings().empty());
    // One token cycling the ring: five markings per hop (download, detect,
    // search, handover-ready at the hop's transmitter; the outcome diamond
    // at the next one).
    EXPECT_EQ(space.marking_count(), 5 * n);
  }
}

TEST(ExtractActivity, DefaultRateAppliesToUntaggedActions) {
  cm::ActivityGraph graph("g");
  const auto initial = graph.add_initial();
  cm::ActivityNode raw;  // untagged action
  raw.kind = cm::ActivityNode::Kind::kAction;
  raw.name = "untimed";
  const auto action = graph.add_node(std::move(raw));
  graph.add_control_flow(initial, action);
  graph.add_control_flow(action, action);
  const auto obj = graph.add_object("o", "T", "");
  graph.add_object_flow(action, obj, true);
  cm::Model model;
  model.add_activity_graph(std::move(graph));

  chor::ExtractOptions options;
  options.default_rate = 4.25;
  auto extraction =
      chor::extract_activity_graph(model.activity_graphs()[0], options);
  cn::NetSemantics semantics(extraction.net);
  const auto moves = semantics.moves(extraction.net.initial_marking());
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_DOUBLE_EQ(moves[0].rate.value(), 4.25);
}

TEST(ExtractActivity, RejectsDegenerateDiagrams) {
  {
    cm::ActivityGraph graph("no_objects");
    graph.add_initial();
    cm::Model model;
    model.add_activity_graph(std::move(graph));
    EXPECT_THROW(chor::extract_activity_graph(model.activity_graphs()[0]),
                 cu::ModelError);
  }
  {
    cm::ActivityGraph graph("inert_object");
    const auto initial = graph.add_initial();
    const auto a = graph.add_action("a", 1.0);
    graph.add_control_flow(initial, a);
    graph.add_object("o", "T", "x");  // never attached to an activity
    const auto p = graph.add_object("p", "T", "x");
    graph.add_object_flow(a, p, true);
    cm::Model model;
    model.add_activity_graph(std::move(graph));
    EXPECT_THROW(chor::extract_activity_graph(model.activity_graphs()[0]),
                 cu::ModelError);
  }
}

TEST(ExtractActivity, ObjectlessActivitiesBecomeStatics) {
  // An activity with no object flow maps to a static component at its
  // location (Section 3 mapping table, row 4).
  cm::ActivityGraph graph("statics");
  const auto initial = graph.add_initial();
  const auto work = graph.add_action("work", 2.0);
  const auto beep = graph.add_action("beep", 7.0);  // object-less
  graph.add_control_flow(initial, work);
  graph.add_control_flow(work, beep);
  graph.add_control_flow(beep, work);
  const auto obj = graph.add_object("o", "T", "lab");
  graph.add_object_flow(work, obj, true);
  cm::Model model;
  model.add_activity_graph(std::move(graph));

  auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
  EXPECT_EQ(extraction.static_locations, std::vector<std::string>{"lab"});
  const cn::Place& place = extraction.net.place(0);
  ASSERT_EQ(place.slots.size(), 2u);
  EXPECT_EQ(place.slots[1].kind, cn::Slot::Kind::kStatic);

  cn::NetSemantics semantics(extraction.net);
  const auto space = cn::NetStateSpace::derive(semantics);
  const auto pi = cc::steady_state(space.generator()).distribution;
  EXPECT_GT(cn::action_throughput(space, pi,
                                  *extraction.net.arena().find_action("beep")),
            0.0);
}

TEST(ExtractActivity, DomAndMetamodelPathsAgree) {
  // The paper's two extractor routes (typed-metamodel vs DOM walk) must
  // produce identical nets.
  const cm::Model model = chor::pda_handover_model();
  const auto via_metamodel =
      chor::extract_activity_graph(model.activity_graphs()[0]);
  const auto via_dom = chor::extract_activity_graph_dom(cm::to_xmi(model));
  EXPECT_EQ(cn::to_string(via_dom.net), cn::to_string(via_metamodel.net));
  EXPECT_EQ(via_dom.place_names, via_metamodel.place_names);
  EXPECT_EQ(via_dom.tokens, via_metamodel.tokens);
}

TEST(ExtractStatechart, TomcatClientServer) {
  const cm::Model model = chor::tomcat_model(false);
  auto extraction = chor::extract_state_machines(model);
  cp::Semantics semantics(extraction.model.arena());
  const auto space =
      cp::StateSpace::derive(semantics, extraction.model.system());
  // Client (3 states) x server (6 states), synchronised on request/response:
  // the reachable space is the single request cycle of 7 joint states.
  EXPECT_TRUE(space.deadlock_states().empty());
  EXPECT_EQ(space.state_count(), 7u);

  const auto pi = cc::steady_state(space.generator()).distribution;
  double total = 0.0;
  for (const std::string& name : extraction.state_constants[0]) {
    total += cp::state_probability(space, pi, extraction.model.arena(),
                                   *extraction.model.arena().find_constant(name));
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(ExtractStatechart, CachedServerRespondsFaster) {
  // The paper's optimisation study: direct servlet lookup must raise the
  // response throughput substantially (translate+compile avoided).
  auto solve_response = [](bool cached) {
    const cm::Model model = chor::tomcat_model(cached);
    auto extraction = chor::extract_state_machines(model);
    cp::Semantics semantics(extraction.model.arena());
    const auto space =
        cp::StateSpace::derive(semantics, extraction.model.system());
    const auto pi = cc::steady_state(space.generator()).distribution;
    return cp::action_throughput(
        space, pi, *extraction.model.arena().find_action("response"));
  };
  const double uncached = solve_response(false);
  const double cached = solve_response(true);
  EXPECT_GT(cached, 3.0 * uncached);
}

TEST(ExtractStatechart, ReplicaClientsInterleave) {
  chor::TomcatParams params;
  params.clients = 3;
  const cm::Model model = chor::tomcat_model(true, params);
  auto extraction = chor::extract_state_machines(model);
  cp::Semantics semantics(extraction.model.arena());
  const auto space =
      cp::StateSpace::derive(semantics, extraction.model.system());
  EXPECT_TRUE(space.deadlock_states().empty());
  // With three interleaving clients the space grows well beyond a single
  // client's 8 states (it would stay tiny if replicas were synchronised).
  EXPECT_GT(space.state_count(), 20u);
}

TEST(Rates, ParseAndApply) {
  const auto rates = chor::parse_rates(R"(
    // overrides for the PDA study
    handover_1 = 0.25
    download_file_1 = 8.0   // inline comment
    # another comment style
  )");
  ASSERT_EQ(rates.size(), 2u);
  cm::Model model = chor::pda_handover_model();
  EXPECT_EQ(chor::apply_rates(model, rates), 2u);
  const auto& graph = model.activity_graphs()[0];
  EXPECT_DOUBLE_EQ(
      graph.nodes()[*graph.find_action("handover_1")].tags.get_double("rate", 0),
      0.25);
}

TEST(Rates, ParseErrors) {
  EXPECT_THROW(chor::parse_rates("novalue"), cu::ParseError);
  EXPECT_THROW(chor::parse_rates("x = fast"), cu::ParseError);
  EXPECT_THROW(chor::parse_rates("x = -1"), cu::ParseError);
  EXPECT_THROW(chor::parse_rates("= 2.0"), cu::ParseError);
}

TEST(Rates, AppliesToStateMachines) {
  cm::Model model = chor::tomcat_model(false);
  const auto rates = chor::parse_rates("translate = 9.5");
  EXPECT_EQ(chor::apply_rates(model, rates), 1u);
  bool found = false;
  for (const auto& t : model.state_machines().back().transitions()) {
    if (t.action == "translate") {
      EXPECT_DOUBLE_EQ(t.rate, 9.5);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Reflect, WritesThroughputTags) {
  cm::Model model = chor::instant_message_model();
  chor::Throughputs throughputs{{"transmit", 0.123}, {"write", 0.456}};
  EXPECT_EQ(chor::reflect_throughputs(model.activity_graphs()[0], throughputs),
            2u);
  const auto& graph = model.activity_graphs()[0];
  EXPECT_DOUBLE_EQ(graph.nodes()[*graph.find_action("transmit")].tags.get_double(
                       "throughput", 0),
                   0.123);
  EXPECT_FALSE(graph.nodes()[*graph.find_action("read")].tags.has("throughput"));
}

TEST(Reflect, WritesProbabilityTags) {
  cm::Model model = chor::tomcat_model(true);
  cm::StateMachine& client = model.state_machines()[0];
  const std::vector<std::string> constants{"GenerateRequest", "WaitForResponse",
                                           "ProcessResponse"};
  chor::Probabilities probabilities{{"WaitForResponse", 0.5}};
  EXPECT_EQ(chor::reflect_probabilities(client, constants, probabilities), 1u);
  EXPECT_DOUBLE_EQ(client.states()[1].tags.get_double("probability", 0), 0.5);
}

TEST(ExtractActivity, MoveRelocatingTwoObjects) {
  // One <<move>> can relocate several objects as long as they come from
  // (and go to) distinct places: the net transition gets one arc per
  // object.
  cm::ActivityGraph graph("convoy");
  const auto initial = graph.add_initial();
  const auto pack = graph.add_action("pack", 2.0);
  const auto ship = graph.add_action("ship", 1.0, /*is_move=*/true);
  const auto unpack = graph.add_action("unpack", 3.0);
  graph.add_control_flow(initial, pack);
  graph.add_control_flow(pack, ship);
  graph.add_control_flow(ship, unpack);
  graph.add_control_flow(unpack, pack);

  const auto truck_a = graph.add_object("truck", "Truck", "depot_a");
  const auto cargo_b = graph.add_object("cargo", "Cargo", "depot_b");
  const auto truck_c = graph.add_object("truck", "Truck", "site_c");
  const auto cargo_d = graph.add_object("cargo", "Cargo", "site_d");
  graph.add_object_flow(pack, truck_a, true);
  graph.add_object_flow(pack, cargo_b, true);
  graph.add_object_flow(ship, truck_a, true);
  graph.add_object_flow(ship, cargo_b, true);
  graph.add_object_flow(ship, truck_c, false);
  graph.add_object_flow(ship, cargo_d, false);
  graph.add_object_flow(unpack, truck_c, true);
  graph.add_object_flow(unpack, cargo_d, true);

  cm::Model model;
  model.add_activity_graph(std::move(graph));
  auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
  EXPECT_EQ(extraction.net.place_count(), 4u);
  EXPECT_EQ(extraction.net.token_type_count(), 2u);
  ASSERT_EQ(extraction.net.transition_count(), 1u);
  EXPECT_EQ(extraction.net.transition(0).inputs.size(), 2u);
  EXPECT_EQ(extraction.net.transition(0).outputs.size(), 2u);

  // The net is live: both tokens shuttle... except the return leg is
  // missing, so after one shipment the cycle blocks at 'ship'.  The pack
  // and unpack throughputs still exist in the transient; here we just
  // require structural validity and a derivable marking graph.
  cn::NetSemantics semantics(extraction.net);
  const auto space = cn::NetStateSpace::derive(semantics);
  EXPECT_GE(space.marking_count(), 4u);
}

TEST(ExtractActivity, MoveFromSamePlaceRejected) {
  // Two objects leaving the same place through one <<move>> needs arc
  // multiplicities, which the paper's Definition 1 does not provide.
  cm::ActivityGraph graph("clash");
  const auto initial = graph.add_initial();
  const auto hop = graph.add_action("hop", 1.0, /*is_move=*/true);
  graph.add_control_flow(initial, hop);
  graph.add_control_flow(hop, hop);
  const auto a_here = graph.add_object("a", "T", "shared");
  const auto b_here = graph.add_object("b", "T", "shared");
  const auto a_there = graph.add_object("a", "T", "left");
  const auto b_there = graph.add_object("b", "T", "right");
  graph.add_object_flow(hop, a_here, true);
  graph.add_object_flow(hop, b_here, true);
  graph.add_object_flow(hop, a_there, false);
  graph.add_object_flow(hop, b_there, false);
  cm::Model model;
  model.add_activity_graph(std::move(graph));
  EXPECT_THROW(chor::extract_activity_graph(model.activity_graphs()[0]),
               cu::ModelError);
}

namespace {

/// Two machines that share both "ping" and "log" action types.  Without an
/// interaction diagram they synchronise on both; an interaction diagram
/// declaring only "ping" as a message lets "log" interleave.
cm::Model two_loggers(bool with_interaction) {
  cm::Model model("loggers");
  cm::StateMachine a("a", "A");
  const auto a0 = a.add_state("A0");
  const auto a1 = a.add_state("A1");
  a.add_transition(a0, a1, "ping", 1.0);
  a.add_transition(a1, a0, "log", 2.0);
  model.add_state_machine(std::move(a));
  cm::StateMachine b("b", "B");
  const auto b0 = b.add_state("B0");
  const auto b1 = b.add_state("B1");
  b.add_passive_transition(b0, b1, "ping");
  b.add_transition(b1, b0, "log", 3.0);
  model.add_state_machine(std::move(b));
  if (with_interaction) {
    cm::InteractionDiagram diagram("ab");
    diagram.add_lifeline("A");
    diagram.add_lifeline("B");
    diagram.add_message("A", "B", "ping");
    model.add_interaction(std::move(diagram));
  }
  return model;
}

}  // namespace

TEST(Interactions, DefaultSynchronisesOnSharedAlphabet) {
  cm::Model model = two_loggers(false);
  auto extraction = chor::extract_state_machines(model);
  cp::Semantics semantics(extraction.model.arena());
  const auto space =
      cp::StateSpace::derive(semantics, extraction.model.system());
  // Fully synchronised lockstep: (A0,B0) -ping-> (A1,B1) -log-> (A0,B0).
  EXPECT_EQ(space.state_count(), 2u);
}

TEST(Interactions, MessagesRestrictCooperation) {
  cm::Model model = two_loggers(true);
  auto extraction = chor::extract_state_machines(model);
  cp::Semantics semantics(extraction.model.arena());
  const auto space =
      cp::StateSpace::derive(semantics, extraction.model.system());
  // ping still synchronises, but the two logs interleave: from (A1,B1)
  // either side may log first, visiting (A0,B1) and (A1,B0) too.
  EXPECT_EQ(space.state_count(), 4u);
  // And the logs now race: total log throughput exceeds the slower one.
  const auto pi = cc::steady_state(space.generator()).distribution;
  const auto log_action = *extraction.model.arena().find_action("log");
  EXPECT_GT(cp::action_throughput(space, pi, log_action), 0.0);
}

TEST(Interactions, XmiRoundTrip) {
  cm::Model model = two_loggers(true);
  const cm::Model loaded = cm::from_xmi(cm::to_xmi(model));
  ASSERT_EQ(loaded.interactions().size(), 1u);
  const auto& diagram = loaded.interactions()[0];
  EXPECT_EQ(diagram.name(), "ab");
  ASSERT_EQ(diagram.lifelines().size(), 2u);
  ASSERT_EQ(diagram.messages().size(), 1u);
  EXPECT_EQ(diagram.messages()[0].sender, "A");
  EXPECT_EQ(diagram.messages()[0].receiver, "B");
  EXPECT_EQ(diagram.messages()[0].action, "ping");
  // Behaviour is preserved through the round trip.
  cm::Model reloaded = loaded;
  auto extraction = chor::extract_state_machines(reloaded);
  cp::Semantics semantics(extraction.model.arena());
  const auto space =
      cp::StateSpace::derive(semantics, extraction.model.system());
  EXPECT_EQ(space.state_count(), 4u);
}

TEST(Interactions, ValidationRejectsBadDiagrams) {
  {
    cm::InteractionDiagram diagram("dup");
    diagram.add_lifeline("A");
    diagram.add_lifeline("A");
    EXPECT_THROW(diagram.validate(), cu::ModelError);
  }
  {
    cm::InteractionDiagram diagram("dangling");
    diagram.add_lifeline("A");
    diagram.add_message("A", "B", "ping");
    EXPECT_THROW(diagram.validate(), cu::ModelError);
  }
  {
    cm::InteractionDiagram diagram("unnamed");
    diagram.add_lifeline("A");
    diagram.add_lifeline("B");
    diagram.add_message("A", "B", "");
    EXPECT_THROW(diagram.validate(), cu::ModelError);
  }
}

TEST(Interactions, UncoveredPairsKeepDefault) {
  // A third context not covered by the diagram still synchronises on its
  // shared alphabet with the others.
  cm::Model model = two_loggers(true);
  cm::StateMachine c("c", "C");
  const auto c0 = c.add_state("C0");
  const auto c1 = c.add_state("C1");
  c.add_passive_transition(c0, c1, "log");
  c.add_transition(c1, c0, "tick", 1.0);
  model.add_state_machine(std::move(c));
  auto extraction = chor::extract_state_machines(model);
  cp::Semantics semantics(extraction.model.arena());
  const auto space =
      cp::StateSpace::derive(semantics, extraction.model.system());
  EXPECT_TRUE(space.deadlock_states().empty());
  // C's passive 'log' must be driven by A's or B's active log.
  const auto pi = cc::steady_state(space.generator()).distribution;
  const auto tick = *extraction.model.arena().find_action("tick");
  EXPECT_GT(cp::action_throughput(space, pi, tick), 0.0);
}

TEST(ExtractActivity, MergeNodesAreSupported) {
  // Several control flows converging on one action ("merge" in UML terms)
  // need no dedicated node kind: the action simply has two predecessors.
  cm::ActivityGraph graph("merge");
  const auto initial = graph.add_initial();
  const auto decision = graph.add_decision("pick");
  const auto fast = graph.add_action("fast_path", 4.0);
  const auto slow = graph.add_action("slow_path", 1.0);
  const auto join = graph.add_action("join_work", 2.0);  // the merge target
  graph.add_control_flow(initial, decision);
  graph.add_control_flow(decision, fast);
  graph.add_control_flow(decision, slow);
  graph.add_control_flow(fast, join);
  graph.add_control_flow(slow, join);
  graph.add_control_flow(join, decision);
  const auto obj = graph.add_object("o", "T", "");
  for (auto action : {fast, slow, join}) graph.add_object_flow(action, obj, true);
  cm::Model model;
  model.add_activity_graph(std::move(graph));

  auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
  cn::NetSemantics semantics(extraction.net);
  const auto space = cn::NetStateSpace::derive(semantics);
  EXPECT_TRUE(space.deadlock_markings().empty());
  const auto pi = cc::steady_state(space.generator()).distribution;
  const auto& arena = extraction.net.arena();
  const double fast_tp =
      cn::action_throughput(space, pi, *arena.find_action("fast_path"));
  const double slow_tp =
      cn::action_throughput(space, pi, *arena.find_action("slow_path"));
  const double join_tp =
      cn::action_throughput(space, pi, *arena.find_action("join_work"));
  // Everything funnels through the merge target.
  EXPECT_NEAR(fast_tp + slow_tp, join_tp, 1e-10);
  // The faster branch wins the race more often.
  EXPECT_GT(fast_tp, slow_tp);
}

TEST(ExtractActivity, ObjectlessActivityInheritsMoveDestination) {
  // "the last location to which a move was made": an object-less activity
  // placed after the <<move>> belongs to the destination's static
  // component, not the origin's.
  cm::ActivityGraph graph("beacon");
  const auto initial = graph.add_initial();
  const auto send = graph.add_action("send", 1.0, /*is_move=*/true);
  const auto beep = graph.add_action("beep", 5.0);  // object-less
  const auto back = graph.add_action("back", 1.0, /*is_move=*/true);
  graph.add_control_flow(initial, send);
  graph.add_control_flow(send, beep);
  graph.add_control_flow(beep, back);
  graph.add_control_flow(back, send);
  const auto at_src = graph.add_object("o", "T", "src");
  const auto at_dst = graph.add_object("o", "T", "dst");
  graph.add_object_flow(send, at_src, true);
  graph.add_object_flow(send, at_dst, false);
  graph.add_object_flow(back, at_dst, true);
  graph.add_object_flow(back, at_src, false);
  cm::Model model;
  model.add_activity_graph(std::move(graph));

  auto extraction = chor::extract_activity_graph(model.activity_graphs()[0]);
  ASSERT_EQ(extraction.static_locations, std::vector<std::string>{"dst"});
  // The static component sits in the 'dst' place.
  const auto dst = *extraction.net.find_place("dst");
  bool has_static = false;
  for (const auto& slot : extraction.net.place(dst).slots) {
    has_static |= slot.kind == cn::Slot::Kind::kStatic;
  }
  EXPECT_TRUE(has_static);
  const auto src = *extraction.net.find_place("src");
  for (const auto& slot : extraction.net.place(src).slots) {
    EXPECT_NE(slot.kind, cn::Slot::Kind::kStatic);
  }
}

TEST(Interactions, SurviveTheProjectPipeline) {
  // A project with state machines AND an interaction diagram analysed
  // through the full file pipeline: the restriction must take effect.
  cm::Model restricted = two_loggers(true);
  cm::Model unrestricted = two_loggers(false);
  auto states_of = [](cm::Model& model) {
    auto extraction = chor::extract_state_machines(
        cm::from_xmi(cm::to_xmi(model)));  // through XMI, as the pipeline does
    cp::Semantics semantics(extraction.model.arena());
    return cp::StateSpace::derive(semantics, extraction.model.system())
        .state_count();
  };
  EXPECT_EQ(states_of(unrestricted), 2u);
  EXPECT_EQ(states_of(restricted), 4u);
}
